"""Figure 3a: OpenCL API-call breakdown (kernel / sync / other).

Paper shape targets: kernel calls ~15% on average (bitcoin lowest at
~4.5%, part-sim-32k highest at ~76.5%); sync calls average ~6.8% with
juliaset the outlier (~25.7%); juliaset has the fewest total calls.
"""

from conftest import save_result

from repro.analysis.render import figure3a_api_calls


def _by_name(chars):
    return {a.name: a for a in chars}


def test_fig3a_api_call_breakdown(benchmark, suite_chars):
    text = benchmark.pedantic(
        figure3a_api_calls, args=(suite_chars,), rounds=1, iterations=1
    )
    save_result("fig3a_api_calls", text)

    apps = _by_name(suite_chars)

    def kernel_frac(name):
        a = apps[name]
        return a.api.kernel_calls / a.api.total_calls

    def sync_frac(name):
        a = apps[name]
        return a.api.synchronization_calls / a.api.total_calls

    # Suite-average shape (paper: ~15% kernel, ~6.8% sync).
    assert 0.08 <= suite_chars.mean_kernel_call_fraction() <= 0.30
    assert 0.02 <= suite_chars.mean_sync_call_fraction() <= 0.15

    # bitcoin initiates work with the smallest kernel-call share (~4.5%).
    assert kernel_frac("cb-throughput-bitcoin") < 0.08
    assert kernel_frac("cb-throughput-bitcoin") == min(
        kernel_frac(n) for n in apps
    )

    # part-sim-32k the largest (~76.5%).
    assert kernel_frac("cb-physics-part-sim-32k") > 0.55
    assert kernel_frac("cb-physics-part-sim-32k") == max(
        kernel_frac(n) for n in apps
    )

    # juliaset: highest sync share (~25.7%) and fewest total API calls.
    assert sync_frac("cb-throughput-juliaset") > 0.18
    assert sync_frac("cb-throughput-juliaset") == max(
        sync_frac(n) for n in apps
    )
    # juliaset is one of the two shortest call streams (in our synthetic
    # suite cb-gaussian-image, the other minimal app, can edge it out).
    shortest_two = sorted(apps.values(), key=lambda a: a.api.total_calls)[:2]
    assert "cb-throughput-juliaset" in {a.name for a in shortest_two}
