"""Figure 7: co-optimizing error and selection size.

Paper: sweeping the error threshold from the min-error policy through
0.5% and 1-10% monotonically increases speedup; at the 10% threshold the
cross-application average lands at 3.0% error with 223x speedup (vs 35x
for pure error minimization).
"""

from conftest import save_result

from repro.analysis.render import figure7_cooptimization
from repro.sampling.explorer import threshold_sweep


def test_fig7_cooptimization(benchmark, suite_explorations):
    # Threshold sweeps compare configs across apps: the grid must be
    # complete for every application.
    for ex in suite_explorations.values():
        assert not ex.errors, f"{ex.application_name}: {ex.errors}"

    points = benchmark.pedantic(
        threshold_sweep,
        args=(list(suite_explorations.values()),),
        rounds=1,
        iterations=1,
    )
    save_result("fig7_cooptimization", figure7_cooptimization(points))

    min_error_point = points[0]
    last = points[-1]
    assert min_error_point.threshold_percent is None
    assert last.threshold_percent == 10.0

    # Speedups grow monotonically as the threshold relaxes (paper).
    speedups = [p.mean_speedup for p in points]
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    # Relaxing to 10% buys a large speedup multiple over min-error...
    assert last.mean_speedup > 2.0 * min_error_point.mean_speedup
    # ...while the realized average error stays well below the threshold
    # (paper: 3.0% at the 10% threshold).
    assert last.mean_error_percent < 6.0
    assert last.mean_error_percent > min_error_point.mean_error_percent
