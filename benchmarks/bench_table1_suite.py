"""Table I: the 25-application suite."""

from conftest import save_result

from repro.analysis.render import table1_suite
from repro.workloads.suite import SUITE_SPECS


def test_table1_suite(benchmark):
    text = benchmark.pedantic(
        table1_suite, args=(SUITE_SPECS,), rounds=1, iterations=1
    )
    save_result(
        "table1_suite",
        text,
        data={
            "apps": [
                {
                    "name": s.name,
                    "suite": s.suite,
                    "domain": s.domain,
                    "kernels": s.n_kernels,
                    "invocations": s.n_invocations,
                }
                for s in SUITE_SPECS
            ]
        },
    )
    assert len(SUITE_SPECS) == 25
