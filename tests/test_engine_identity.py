"""Engine identity: vectorized and reference simulation are bit-identical.

The vectorized engine (block-batched stepping, numpy cache streams,
steady-state fast-forwarding, invocation memoization) must reproduce the
scalar reference engine exactly -- same cycles, seconds, instruction
counts, and cache hit/miss/eviction/writeback counts -- not merely
approximately.  These tests drive both engines over the same invocation
sequences with identically seeded RNGs and compare every field.
"""

import dataclasses

import numpy as np
import pytest

from repro.gpu.cache import CacheConfig
from repro.gpu.device import HD4000
from repro.isa.builder import KernelBuilder
from repro.isa.instruction import AccessPattern
from repro.isa.program import TripCount
from repro.sampling.pipeline import profile_workload
from repro.simulation import dispatch_graph
from repro.simulation.detailed import DetailedGPUSimulator
from repro.simulation.sampled import simulate_full

from conftest import build_tiny_kernel

CACHE = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=4)


def build_random_kernel(name="rand", bytes_a=4, bytes_b=4, jitter=0):
    """A kernel whose loop body mixes RANDOM, STRIDED, and BROADCAST sends."""
    kb = KernelBuilder(name, simd_width=16, arg_names=("iters", "n"))
    with kb.block("prologue") as b:
        b.mov(exec_size=1)
        b.load(bytes_per_channel=4, pattern=AccessPattern.BROADCAST)
    with kb.loop(TripCount(base=1, arg="iters", scale=1.0, jitter=jitter)):
        with kb.block("body") as b:
            b.load(bytes_per_channel=bytes_a, pattern=AccessPattern.RANDOM)
            b.alu("mad")
            b.load(bytes_per_channel=4, pattern=AccessPattern.STRIDED, stride=3)
            b.store(bytes_per_channel=bytes_b, pattern=AccessPattern.RANDOM)
    with kb.block("epilogue") as b:
        b.store(bytes_per_channel=4)
        b.control("ret")
    return kb.build()


def run_sequence(invocations, engine, memoize=True, seed=7):
    """Simulate a list of (kernel, args, gws) with one simulator."""
    simulator = DetailedGPUSimulator(
        HD4000, CACHE, engine=engine, memoize=memoize
    )
    rng = np.random.default_rng(seed)
    results = [
        simulator.simulate(kernel, args, gws, rng)
        for kernel, args, gws in invocations
    ]
    return results, simulator


def assert_identical(got, want):
    """Every SimulatedDispatch field, bit-for-bit."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.kernel_name == w.kernel_name
        assert g.instruction_count == w.instruction_count
        assert g.simulated_instructions == w.simulated_instructions
        assert g.cycles == w.cycles  # exact, not approx
        assert g.seconds == w.seconds
        assert dataclasses.asdict(g.cache) == dataclasses.asdict(w.cache)


SEQUENCES = {
    "deterministic": [
        (build_tiny_kernel(), {"iters": float(i % 5 + 1), "n": 64.0}, 64)
        for i in range(8)
    ],
    "random-uniform": [
        (build_random_kernel(), {"iters": float(3 + i % 3), "n": 128.0}, 128)
        for i in range(6)
    ],
    "random-mixed-bytes": [
        (build_random_kernel(bytes_b=16), {"iters": 4.0, "n": 64.0}, 64)
        for _ in range(4)
    ],
    "jittered": [
        (build_random_kernel(jitter=2), {"iters": 6.0, "n": 256.0}, 256)
        for _ in range(4)
    ],
    "interleaved": [
        (build_tiny_kernel(), {"iters": 40.0, "n": 512.0}, 512),
        (build_random_kernel(), {"iters": 5.0, "n": 128.0}, 128),
        (build_tiny_kernel(), {"iters": 40.0, "n": 512.0}, 512),
        (build_random_kernel(bytes_a=8), {"iters": 2.0, "n": 64.0}, 64),
        (build_tiny_kernel("other", loop_trips=9), {"iters": 9.0, "n": 64.0}, 64),
        (build_tiny_kernel(), {"iters": 40.0, "n": 512.0}, 512),
    ],
}


@pytest.mark.parametrize("label", sorted(SEQUENCES))
def test_engines_bit_identical(label):
    invocations = SEQUENCES[label]
    ref, ref_sim = run_sequence(invocations, "reference")
    vec, vec_sim = run_sequence(invocations, "vectorized")
    assert_identical(vec, ref)
    # Lifetime accounting matches too: same cache totals, same stepped
    # instructions (memo replays count the instructions they cover).
    assert dataclasses.asdict(vec_sim.cache.stats) == dataclasses.asdict(
        ref_sim.cache.stats
    )
    assert (
        vec_sim.total_simulated_instructions
        == ref_sim.total_simulated_instructions
    )


@pytest.mark.parametrize("label", sorted(SEQUENCES))
def test_memoization_transparent(label):
    """Memoization on vs off never changes any result."""
    invocations = SEQUENCES[label]
    plain, plain_sim = run_sequence(invocations, "vectorized", memoize=False)
    memo, memo_sim = run_sequence(invocations, "vectorized", memoize=True)
    assert_identical(memo, plain)
    assert dataclasses.asdict(memo_sim.cache.stats) == dataclasses.asdict(
        plain_sim.cache.stats
    )


def test_memoization_hits_repeated_invocations():
    kernel = build_tiny_kernel()
    invocations = [(kernel, {"iters": 4.0, "n": 64.0}, 64)] * 6
    results, simulator = run_sequence(invocations, "vectorized")
    assert simulator.memo_hits > 0
    assert simulator.memo_stepped_avoided > 0
    # The first invocation runs on a cold cache; the second reaches the
    # warmed steady state, which every later replay reproduces exactly.
    assert_identical(results[2:], results[1:-1])


def test_rng_state_advances_identically():
    """Both engines leave the caller's generator in the same state."""
    invocations = SEQUENCES["jittered"] + SEQUENCES["random-uniform"]
    ref_rng = np.random.default_rng(11)
    vec_rng = np.random.default_rng(11)
    ref_sim = DetailedGPUSimulator(HD4000, CACHE, engine="reference")
    vec_sim = DetailedGPUSimulator(HD4000, CACHE, engine="vectorized")
    for kernel, args, gws in invocations:
        ref_sim.simulate(kernel, args, gws, ref_rng)
        vec_sim.simulate(kernel, args, gws, vec_rng)
    assert repr(ref_rng.bit_generator.state) == repr(vec_rng.bit_generator.state)


def test_simulate_full_engine_identity(small_workload, small_app):
    """The whole sampled-simulation entry point agrees across engines."""
    ref = simulate_full(
        small_app.name, small_app.sources, small_workload.log, HD4000,
        CACHE, engine="reference",
    )
    vec = simulate_full(
        small_app.name, small_app.sources, small_workload.log, HD4000,
        CACHE, engine="vectorized",
    )
    assert vec.measured_spi == ref.measured_spi
    assert vec.simulated_instructions == ref.simulated_instructions


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="engine"):
        DetailedGPUSimulator(HD4000, CACHE, engine="warp-speed")


# -- batched (cross-dispatch) engine -----------------------------------------


@pytest.mark.parametrize("label", sorted(SEQUENCES))
def test_batched_engine_bit_identical(label):
    invocations = SEQUENCES[label]
    ref, ref_sim = run_sequence(invocations, "reference")
    bat, bat_sim = run_sequence(invocations, "batched")
    assert_identical(bat, ref)
    assert dataclasses.asdict(bat_sim.cache.stats) == dataclasses.asdict(
        ref_sim.cache.stats
    )
    assert (
        bat_sim.total_simulated_instructions
        == ref_sim.total_simulated_instructions
    )


@pytest.mark.parametrize("label", sorted(SEQUENCES))
def test_batched_memoization_transparent(label):
    """The counts-keyed epoch memo on vs off never changes any result."""
    invocations = SEQUENCES[label]
    plain, plain_sim = run_sequence(invocations, "batched", memoize=False)
    memo, memo_sim = run_sequence(invocations, "batched", memoize=True)
    assert_identical(memo, plain)
    assert dataclasses.asdict(memo_sim.cache.stats) == dataclasses.asdict(
        plain_sim.cache.stats
    )


def test_batched_rng_state_advances_identically():
    invocations = SEQUENCES["jittered"] + SEQUENCES["random-uniform"]
    ref_rng = np.random.default_rng(11)
    bat_rng = np.random.default_rng(11)
    ref_sim = DetailedGPUSimulator(HD4000, CACHE, engine="reference")
    bat_sim = DetailedGPUSimulator(HD4000, CACHE, engine="batched")
    for kernel, args, gws in invocations:
        ref_sim.simulate(kernel, args, gws, ref_rng)
        bat_sim.simulate(kernel, args, gws, bat_rng)
    assert repr(ref_rng.bit_generator.state) == repr(bat_rng.bit_generator.state)


def test_simulate_epoch_matches_sequential_simulate():
    """One merged-stream epoch call == the same dispatches one at a time."""
    items = [
        (build_tiny_kernel(), {"iters": 4.0, "n": 64.0}, 64),
        (build_random_kernel(), {"iters": 3.0, "n": 128.0}, 128),
        (build_tiny_kernel("other", loop_trips=9), {"iters": 9.0, "n": 64.0}, 64),
        (build_tiny_kernel(), {"iters": 6.0, "n": 64.0}, 64),
    ]
    ref_sim = DetailedGPUSimulator(HD4000, CACHE, engine="reference")
    ref_rng = np.random.default_rng(5)
    ref = [ref_sim.simulate(k, a, g, ref_rng) for k, a, g in items]

    bat_sim = DetailedGPUSimulator(HD4000, CACHE, engine="batched")
    bat_rng = np.random.default_rng(5)
    bat = bat_sim.simulate_epoch(items, bat_rng)

    assert_identical(bat, ref)
    # Per-dispatch cache deltas serialize with the same key order too.
    for g, w in zip(bat, ref):
        assert list(dataclasses.asdict(g.cache)) == list(
            dataclasses.asdict(w.cache)
        )
    assert dataclasses.asdict(bat_sim.cache.stats) == dataclasses.asdict(
        ref_sim.cache.stats
    )
    assert bat_sim.batch_stats()["max_width"] == len(items)


def test_epoch_memo_hits_and_replays_exactly():
    """Repeating an epoch reaches a cache fixed point, then memo-replays."""
    items = [
        (build_tiny_kernel(), {"iters": float(i % 3 + 2), "n": 64.0}, 64)
        for i in range(4)
    ]
    memo_sim = DetailedGPUSimulator(HD4000, CACHE, engine="batched")
    plain_sim = DetailedGPUSimulator(
        HD4000, CACHE, engine="batched", memoize=False
    )
    memo_rng = np.random.default_rng(3)
    plain_rng = np.random.default_rng(3)
    for _ in range(6):
        got = memo_sim.simulate_epoch(items, memo_rng)
        want = plain_sim.simulate_epoch(items, plain_rng)
        assert_identical(got, want)
    assert memo_sim.epoch_memo_hits >= 3
    assert memo_sim.memo_stepped_avoided > 0


def test_simulate_full_batched_identity(small_workload, small_app):
    ref = simulate_full(
        small_app.name, small_app.sources, small_workload.log, HD4000,
        CACHE, engine="reference",
    )
    bat = simulate_full(
        small_app.name, small_app.sources, small_workload.log, HD4000,
        CACHE, engine="batched",
    )
    assert bat.measured_spi == ref.measured_spi
    assert bat.simulated_instructions == ref.simulated_instructions


@pytest.fixture(scope="module")
def mini_workloads(mini_suite):
    return [(app, profile_workload(app, trial_seed=3)) for app in mini_suite]


def test_mini_suite_batched_identity_per_dispatch(mini_workloads):
    """Full mini-suite: every dispatch's result and cache delta, exactly."""
    for app, workload in mini_workloads:
        log = workload.log
        indices = list(range(len(log.invocations)))

        ref_sim = DetailedGPUSimulator(HD4000, CACHE, engine="reference")
        ref_rng = np.random.default_rng(0)
        ref = []
        for i in indices:
            profile = log.invocations[i]
            binary = app.sources[profile.kernel_name].body
            env = {**dict(profile.data_items), **dict(profile.arg_items)}
            ref.append(
                ref_sim.simulate(
                    binary, env, profile.global_work_size, ref_rng
                )
            )

        bat_sim = DetailedGPUSimulator(HD4000, CACHE, engine="batched")
        bat_rng = np.random.default_rng(0)
        epochs = dispatch_graph.partition_epochs(
            dispatch_graph.nodes_from_log(log, indices)
        )
        bat = []
        for epoch in epochs:
            items = []
            for node in epoch.nodes:
                profile = log.invocations[node.index]
                binary = app.sources[profile.kernel_name].body
                env = {**dict(profile.data_items), **dict(profile.arg_items)}
                items.append((binary, env, profile.global_work_size))
            bat.extend(bat_sim.simulate_epoch(items, bat_rng))

        assert_identical(bat, ref)
        assert dataclasses.asdict(bat_sim.cache.stats) == dataclasses.asdict(
            ref_sim.cache.stats
        )
        # The suite genuinely exercises cross-dispatch batching.
        assert bat_sim.batch_stats()["max_width"] > 1, app.name


def test_batched_identity_under_faults_and_jobs(monkeypatch, small_app):
    """An active fault plan + worker fan-out never change simulation."""
    from repro import faults

    monkeypatch.setenv("REPRO_JOBS", "2")
    with faults.session(faults.FaultPlan.uniform(0.10, seed=7)):
        workload = profile_workload(small_app, trial_seed=3)
        ref = simulate_full(
            small_app.name, small_app.sources, workload.log, HD4000,
            CACHE, engine="reference",
        )
        # jobs=None opts into REPRO_JOBS=2: counts precompute fans out to
        # a worker pool, which must be invisible in the results.
        bat = simulate_full(
            small_app.name, small_app.sources, workload.log, HD4000,
            CACHE, engine="batched", jobs=None,
        )
    assert bat.measured_spi == ref.measured_spi
    assert bat.simulated_instructions == ref.simulated_instructions
