"""Functional GPU executor: thread derivation, counts, stats, hooks."""

import numpy as np
import pytest

from repro.gpu.device import HD4000, HD4600
from repro.gpu.execution import (
    ON_EXECUTE_HOOK_KEY,
    GPUDevice,
    KernelDispatch,
)
from repro.gpu.timing import TimingParameters

from conftest import build_tiny_kernel


def _device(**kwargs):
    return GPUDevice(HD4000, TimingParameters(**kwargs))


def _run(kernel, gws=256, iters=4.0, seed=0, device=None):
    device = device or _device()
    return device.execute(
        kernel, {"iters": iters, "n": float(gws)}, gws,
        np.random.default_rng(seed),
    )


def test_thread_count_from_gws_and_width():
    kernel = build_tiny_kernel(simd_width=16)
    assert _run(kernel, gws=256).n_hw_threads == 16
    assert _run(kernel, gws=250).n_hw_threads == 16  # ceil
    kernel8 = build_tiny_kernel(simd_width=8)
    assert _run(kernel8, gws=256).n_hw_threads == 32


def test_zero_gws_rejected():
    kernel = build_tiny_kernel()
    with pytest.raises(ValueError, match="global_work_size"):
        _device().execute(kernel, {"iters": 1.0, "n": 1.0}, 0,
                          np.random.default_rng(0))


def test_block_counts_scale_with_threads():
    kernel = build_tiny_kernel()
    small = _run(kernel, gws=16, seed=1)
    large = _run(kernel, gws=160, seed=1)
    # Same per-thread behaviour (same seed), 10x the threads.
    np.testing.assert_array_equal(large.block_counts, small.block_counts * 10)


def test_instruction_count_consistency():
    kernel = build_tiny_kernel()
    d = _run(kernel)
    manual = int(d.block_counts @ kernel.arrays.instruction_counts)
    assert d.instruction_count == manual


def test_iters_argument_scales_work():
    kernel = build_tiny_kernel()
    few = _run(kernel, iters=2.0)
    many = _run(kernel, iters=20.0)
    assert many.instruction_count > few.instruction_count


def test_bytes_accounting():
    kernel = build_tiny_kernel()
    d = _run(kernel)
    assert d.bytes_read == int(d.block_counts @ kernel.arrays.bytes_read)
    assert d.bytes_written == int(d.block_counts @ kernel.arrays.bytes_written)
    assert d.total_bytes == d.bytes_read + d.bytes_written


def test_time_positive_and_spi():
    d = _run(build_tiny_kernel())
    assert d.time_seconds > 0
    assert d.spi == pytest.approx(d.time_seconds / d.instruction_count)


def test_dispatch_log_grows():
    device = _device()
    kernel = build_tiny_kernel()
    for i in range(3):
        device.execute(kernel, {"iters": 2.0, "n": 64.0}, 64,
                       np.random.default_rng(i))
    assert [d.dispatch_index for d in device.dispatch_log] == [0, 1, 2]
    device.reset()
    assert device.dispatch_log == []


def test_hook_invoked_with_dispatch():
    kernel = build_tiny_kernel()
    seen: list[KernelDispatch] = []
    hooked = kernel.with_blocks(
        kernel.blocks, {ON_EXECUTE_HOOK_KEY: lambda b, d: seen.append(d)}
    )
    d = _run(hooked)
    assert d.instrumented
    assert seen == [d]


def test_no_hook_means_uninstrumented():
    assert not _run(build_tiny_kernel()).instrumented


def test_enqueue_stamps_passed_through():
    device = _device()
    kernel = build_tiny_kernel()
    d = device.execute(kernel, {"iters": 1.0, "n": 64.0}, 64,
                       np.random.default_rng(0),
                       enqueue_call_index=17, sync_epoch=3)
    assert d.enqueue_call_index == 17
    assert d.sync_epoch == 3


def test_faster_device_runs_compute_kernels_faster():
    kernel = build_tiny_kernel()
    params = TimingParameters(noise_sigma=0.0)
    ivy = GPUDevice(HD4000, params)
    haswell = GPUDevice(HD4600, params)
    t_ivy = ivy.execute(kernel, {"iters": 50.0, "n": 4096.0}, 4096,
                        np.random.default_rng(0)).cost.compute_seconds
    t_has = haswell.execute(kernel, {"iters": 50.0, "n": 4096.0}, 4096,
                            np.random.default_rng(0)).cost.compute_seconds
    assert t_has < t_ivy


def test_with_spec_builds_fresh_device():
    device = _device(noise_sigma=0.1)
    other = device.with_spec(HD4600)
    assert other.spec is HD4600
    assert other.timing.params.noise_sigma == 0.1
    assert other.dispatch_log == []
