"""Dispatch-graph epoch partitioning: safety properties and capture.

The batched engine's correctness must not depend on the partition (the
engines are bit-identical regardless), but the partition has safety
invariants of its own: it never reorders dispatches, never crosses a
sync boundary, and never places a dependent pair in one epoch.  These
are checked here property-style over randomized dispatch sequences,
plus concrete tests of the runtime's buffer read-set capture.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gtpin.profiler import build_runtime
from repro.isa.builder import KernelBuilder
from repro.isa.program import TripCount
from repro.opencl.api import KERNEL_ENQUEUE, APICall
from repro.opencl.host_program import HostProgram
from repro.simulation.dispatch_graph import (
    DispatchNode,
    nodes_from_log,
    nodes_from_run,
    partition_epochs,
)

KEYS = ("__a", "__b", "__c")
VALUES = (0.0, 1.0, 2.0)


@st.composite
def node_lists(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    nodes = []
    sync = 0
    for i in range(n):
        sync += draw(st.integers(min_value=0, max_value=1))
        reads = draw(
            st.lists(
                st.tuples(st.sampled_from(KEYS), st.sampled_from(VALUES)),
                max_size=3,
                unique_by=lambda read: read[0],
            )
        )
        writes = draw(st.lists(st.sampled_from(KEYS), max_size=2, unique=True))
        nodes.append(
            DispatchNode(
                index=i,
                kernel_name=f"k{i % 3}",
                sync_epoch=sync,
                reads=tuple(reads),
                writes=tuple(writes),
            )
        )
    return nodes


def _dependent(earlier, later):
    """True if ``later`` must stay ordered after ``earlier``."""
    e_writes, l_writes = set(earlier.writes), set(later.writes)
    e_reads, l_reads = dict(earlier.reads), dict(later.reads)
    if e_writes & set(l_reads):
        return True  # RAW
    if l_writes & (set(e_reads) | e_writes):
        return True  # WAR / WAW
    shared = set(e_reads) & set(l_reads)
    # Different observed values on a shared buffer mean a host write
    # landed between the two dispatches: order is observable.
    return any(e_reads[key] != l_reads[key] for key in shared)


@settings(deadline=None, max_examples=60)
@given(node_lists())
def test_partition_never_reorders(nodes):
    epochs = partition_epochs(nodes)
    assert [n for e in epochs for n in e.nodes] == nodes
    assert all(e.width >= 1 for e in epochs)


@settings(deadline=None, max_examples=60)
@given(node_lists())
def test_sync_boundary_is_always_an_epoch_boundary(nodes):
    for epoch in partition_epochs(nodes):
        assert len({n.sync_epoch for n in epoch.nodes}) == 1


@settings(deadline=None, max_examples=60)
@given(node_lists())
def test_no_dependent_pair_shares_an_epoch(nodes):
    for epoch in partition_epochs(nodes):
        for i, earlier in enumerate(epoch.nodes):
            for later in epoch.nodes[i + 1:]:
                assert not _dependent(earlier, later)


@settings(deadline=None, max_examples=60)
@given(node_lists(), st.integers(min_value=1, max_value=4))
def test_max_width_caps_epochs_without_reordering(nodes, max_width):
    epochs = partition_epochs(nodes, max_width=max_width)
    assert all(e.width <= max_width for e in epochs)
    assert [n for e in epochs for n in e.nodes] == nodes


# -- runtime capture ----------------------------------------------------------


def _data_kernel(name="dk"):
    kb = KernelBuilder(name, simd_width=16, arg_names=("iters", "n"))
    with kb.block("prologue") as b:
        b.mov(exec_size=1)
    with kb.loop(TripCount(base=1, arg="__complexity", scale=1.0)):
        with kb.block("tail") as b:
            b.alu("mul")
            b.load()
    with kb.block("epilogue") as b:
        b.control("ret")
    return kb.build()


def _program(complexities, finish_between):
    calls = [
        APICall("clBuildProgram"),
        APICall("clCreateKernel", {"kernel": "dk"}),
        APICall("clSetKernelArg", {"kernel": "dk", "arg_index": 0, "value": 3.0}),
        APICall("clSetKernelArg", {"kernel": "dk", "arg_index": 1, "value": 64.0}),
    ]
    for value in complexities:
        calls.append(APICall("clEnqueueWriteBuffer", {"__complexity": value}))
        calls.append(
            APICall(KERNEL_ENQUEUE, {"kernel": "dk", "global_work_size": 64})
        )
        if finish_between:
            calls.append(APICall("clFinish"))
    calls.append(APICall("clFinish"))
    return HostProgram(name="dg-app", calls=tuple(calls))


class _App:
    def __init__(self, complexities, finish_between=False):
        from repro.driver.jit import KernelSource

        self.name = "dg-app"
        self.kernel = _data_kernel()
        self.sources = {"dk": KernelSource(name="dk", body=self.kernel)}
        self.host_program = _program(complexities, finish_between)


def _nodes(complexities, finish_between=False):
    app = _App(complexities, finish_between)
    run = build_runtime(app).run(app.host_program)
    return nodes_from_run(run, {"dk": app.kernel})


def test_runtime_captures_buffer_read_sets():
    nodes = _nodes([1.0, 5.0])
    assert [n.reads for n in nodes] == [
        (("__complexity", 1.0),),
        (("__complexity", 5.0),),
    ]
    assert all(n.writes == () for n in nodes)


def test_intervening_host_write_splits_an_epoch():
    # Same sync epoch, but the host rewrote the buffer between the two
    # readers: the observed values differ, so they may not batch.
    drifting = partition_epochs(_nodes([1.0, 5.0]))
    assert [e.indices for e in drifting] == [(0,), (1,)]
    # An idempotent rewrite is not an observable hazard: one epoch.
    stable = partition_epochs(_nodes([2.0, 2.0]))
    assert [e.indices for e in stable] == [(0, 1)]


def test_sync_calls_split_epochs_even_without_hazards():
    synced = partition_epochs(_nodes([2.0, 2.0], finish_between=True))
    assert [e.indices for e in synced] == [(0,), (1,)]


def test_nodes_from_log_matches_runtime_capture(small_workload, small_app):
    log = small_workload.log
    indices = list(range(len(log.invocations)))
    nodes = nodes_from_log(log, indices)
    assert [n.index for n in nodes] == indices
    for node in nodes:
        profile = log.invocations[node.index]
        assert node.kernel_name == profile.kernel_name
        assert node.sync_epoch == profile.sync_epoch
        consumed = small_app.sources[node.kernel_name].body.trip_args
        for key, value in node.reads:
            assert key.startswith("__") and key in consumed
            assert dict(profile.data_items)[key] == value
