"""Feature vectors: Table III's ten constructions."""

import pytest

from repro.sampling.features import (
    ALL_FEATURE_KINDS,
    FeatureKind,
    build_feature_vectors,
    feature_vector,
)
from repro.sampling.intervals import IntervalScheme, divide


@pytest.fixture(scope="module")
def log(small_workload):
    return small_workload.log


@pytest.fixture(scope="module")
def intervals(log):
    return divide(log, IntervalScheme.SYNC)


def test_exactly_ten_feature_kinds():
    assert len(ALL_FEATURE_KINDS) == 10
    labels = {k.value for k in ALL_FEATURE_KINDS}
    assert labels == {
        "KN", "KN-ARGS", "KN-GWS", "KN-ARGS-GWS", "KN-RW",
        "BB", "BB-R", "BB-W", "BB-R-W", "BB-(R+W)",
    }


def test_kind_classification():
    assert FeatureKind.KN.is_kernel_based
    assert FeatureKind.BB_R.is_block_based
    assert FeatureKind.KN_RW.uses_memory
    assert not FeatureKind.BB.uses_memory


def test_kn_keys_are_kernel_names(log, intervals):
    vec = feature_vector(log, intervals[0], FeatureKind.KN)
    for key in vec:
        assert key[0] == "kn"
    kernels_in_interval = {
        log.invocations[i].kernel_name
        for i in intervals[0].invocation_indices()
    }
    assert {key[1] for key in vec} == kernels_in_interval


def test_kn_weighting_by_instructions(log, intervals):
    """KN vector values equal instructions contributed per kernel."""
    interval = intervals[0]
    vec = feature_vector(log, interval, FeatureKind.KN)
    manual: dict = {}
    for i in interval.invocation_indices():
        p = log.invocations[i]
        key = ("kn", p.kernel_name)
        manual[key] = manual.get(key, 0.0) + p.instruction_count
    assert vec == manual


def test_kn_args_distinguishes_argument_values(log, intervals):
    whole_program = divide(log, IntervalScheme.SYNC)
    kn = set()
    kn_args = set()
    for interval in whole_program:
        kn |= set(feature_vector(log, interval, FeatureKind.KN))
        kn_args |= set(feature_vector(log, interval, FeatureKind.KN_ARGS))
    assert len(kn_args) >= len(kn)


def test_kn_gws_key_includes_gws(log, intervals):
    vec = feature_vector(log, intervals[0], FeatureKind.KN_GWS)
    for key in vec:
        assert isinstance(key[2], int)  # the global work size


def test_kn_rw_adds_byte_dimensions(log, intervals):
    base = feature_vector(log, intervals[0], FeatureKind.KN)
    rw = feature_vector(log, intervals[0], FeatureKind.KN_RW)
    assert len(rw) > len(base)
    read_keys = [k for k in rw if k[0] == "kn_r"]
    write_keys = [k for k in rw if k[0] == "kn_w"]
    assert read_keys and write_keys


def test_bb_keys_are_kernel_block_pairs(log, intervals):
    vec = feature_vector(log, intervals[0], FeatureKind.BB)
    for key in vec:
        assert key[0] == "bb"
        assert isinstance(key[2], int)


def test_bb_weighting_by_block_size(log, intervals):
    """BB entries are execution counts times the block's instruction count."""
    interval = intervals[0]
    vec = feature_vector(log, interval, FeatureKind.BB)
    total = sum(vec.values())
    assert total == pytest.approx(float(interval.instruction_count))


def test_bb_unweighted_counts_executions(log, intervals):
    interval = intervals[0]
    vec = feature_vector(log, interval, FeatureKind.BB, weighted=False)
    manual = 0
    for i in interval.invocation_indices():
        manual += int(log.invocations[i].block_counts.sum())
    assert sum(vec.values()) == pytest.approx(float(manual))


def test_bb_r_only_adds_read_dimensions(log, intervals):
    vec = feature_vector(log, intervals[0], FeatureKind.BB_R)
    prefixes = {k[0] for k in vec}
    assert prefixes <= {"bb", "bb_r"}
    assert "bb_r" in prefixes


def test_bb_w_only_adds_write_dimensions(log, intervals):
    vec = feature_vector(log, intervals[0], FeatureKind.BB_W)
    prefixes = {k[0] for k in vec}
    assert prefixes <= {"bb", "bb_w"}


def test_bb_r_w_adds_both(log, intervals):
    vec = feature_vector(log, intervals[0], FeatureKind.BB_R_W)
    prefixes = {k[0] for k in vec}
    assert {"bb", "bb_r"} <= prefixes or {"bb", "bb_w"} <= prefixes


def test_bb_r_plus_w_combines(log, intervals):
    combined = feature_vector(log, intervals[0], FeatureKind.BB_R_PLUS_W)
    separate = feature_vector(log, intervals[0], FeatureKind.BB_R_W)
    combined_bytes = sum(v for k, v in combined.items() if k[0] == "bb_rw")
    separate_bytes = sum(
        v for k, v in separate.items() if k[0] in ("bb_r", "bb_w")
    )
    assert combined_bytes == pytest.approx(separate_bytes)


def test_build_feature_vectors_aligns_with_intervals(log, intervals):
    vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
    assert len(vectors) == len(intervals)
    for vec in vectors:
        assert vec  # every interval has at least one event


def test_vectors_differ_across_phases(log):
    """Different program phases produce different feature vectors."""
    intervals = divide(log, IntervalScheme.SYNC)
    vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
    assert any(
        set(a) != set(b) or a != b
        for a, b in zip(vectors, vectors[1:])
    )


class TestBatchedEquivalence:
    """The batched BB builder is bit-identical to the scalar path --
    values AND dict key order (key order feeds the random projection)."""

    @pytest.mark.parametrize(
        "kind", [k for k in ALL_FEATURE_KINDS if k.is_block_based]
    )
    @pytest.mark.parametrize("weighted", [True, False])
    def test_all_block_kinds_and_schemes(self, log, kind, weighted):
        for scheme in IntervalScheme:
            intervals = divide(log, scheme)
            batched = build_feature_vectors(log, intervals, kind, weighted)
            scalar = [
                feature_vector(log, iv, kind, weighted) for iv in intervals
            ]
            assert len(batched) == len(scalar)
            for got, want in zip(batched, scalar):
                assert list(got.keys()) == list(want.keys())
                assert got == want  # exact float equality, not approx

    def test_kernel_kinds_unchanged(self, log, intervals):
        for kind in ALL_FEATURE_KINDS:
            if kind.is_block_based:
                continue
            built = build_feature_vectors(log, intervals, kind)
            scalar = [feature_vector(log, iv, kind) for iv in intervals]
            assert built == scalar
