"""API-call vocabulary and Figure 3a categorization."""

from repro.opencl.api import (
    KERNEL_ENQUEUE,
    OTHER_CALLS,
    PAPER_KERNEL_ENQUEUE_SPELLING,
    SYNCHRONIZATION_CALLS,
    APICall,
    CallCategory,
    categorize,
    is_synchronization,
)


def test_exactly_seven_synchronization_calls():
    """Section II lists exactly seven synchronization calls."""
    assert len(SYNCHRONIZATION_CALLS) == 7
    assert set(SYNCHRONIZATION_CALLS) == {
        "clFinish",
        "clEnqueueCopyImageToBuffer",
        "clWaitForEvents",
        "clFlush",
        "clEnqueueReadImage",
        "clEnqueueCopyBuffer",
        "clEnqueueReadBuffer",
    }


def test_kernel_enqueue_categorized_as_kernel():
    assert categorize(KERNEL_ENQUEUE) is CallCategory.KERNEL
    assert categorize(PAPER_KERNEL_ENQUEUE_SPELLING) is CallCategory.KERNEL


def test_sync_calls_categorized():
    for name in SYNCHRONIZATION_CALLS:
        assert categorize(name) is CallCategory.SYNCHRONIZATION
        assert is_synchronization(name)


def test_other_calls_categorized():
    for name in OTHER_CALLS:
        assert categorize(name) is CallCategory.OTHER
        assert not is_synchronization(name)


def test_write_buffer_is_not_synchronization():
    """Only the read-side transfer calls synchronize (per the paper)."""
    assert categorize("clEnqueueWriteBuffer") is CallCategory.OTHER


def test_unknown_call_defaults_to_other():
    assert categorize("clSomeVendorExtension") is CallCategory.OTHER


def test_api_call_properties():
    call = APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 64})
    assert call.is_kernel_enqueue
    assert not call.is_synchronization
    assert "global_work_size=64" in str(call)


def test_api_call_category_cached_semantics():
    call = APICall("clFinish")
    assert call.is_synchronization
    assert call.category is CallCategory.SYNCHRONIZATION
