"""SimPoint 3.0 file-format interop (.bb / .simpoints / .weights)."""

import io

import pytest

from repro.sampling.error import selection_error
from repro.sampling.features import FeatureKind, build_feature_vectors
from repro.sampling.intervals import IntervalScheme, divide
from repro.sampling.selection import SelectionConfig, selection_from_simpoint
from repro.sampling.simpoint import SimPointOptions, run_simpoint
from repro.sampling.simpoint_files import (
    DimensionMap,
    read_frequency_vectors,
    read_simpoints,
    selection_from_simpoint_files,
    write_frequency_vectors,
    write_simpoints,
)

FAST = SimPointOptions(max_k=5, restarts=1, max_iterations=30)


@pytest.fixture(scope="module")
def pipeline(small_workload):
    log = small_workload.log
    intervals = divide(log, IntervalScheme.SYNC)
    vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
    result = run_simpoint(
        vectors, [iv.instruction_count for iv in intervals], FAST
    )
    return log, intervals, vectors, result


def test_dimension_map_is_one_based_and_stable(pipeline):
    _, _, vectors, _ = pipeline
    dmap = DimensionMap.build(vectors)
    dims = sorted(dmap.key_to_dim.values())
    assert dims == list(range(1, dmap.n_dimensions + 1))
    assert DimensionMap.build(vectors).key_to_dim == dmap.key_to_dim


def test_frequency_vector_round_trip(pipeline):
    _, _, vectors, _ = pipeline
    out = io.StringIO()
    dmap = write_frequency_vectors(vectors, out)
    parsed = read_frequency_vectors(io.StringIO(out.getvalue()))
    assert len(parsed) == len(vectors)
    for original, round_tripped in zip(vectors, parsed):
        expected = {
            dmap.key_to_dim[key]: value for key, value in original.items()
        }
        assert round_tripped == pytest.approx(expected)


def test_bbv_lines_have_simpoint_shape(pipeline):
    _, _, vectors, _ = pipeline
    out = io.StringIO()
    write_frequency_vectors(vectors, out)
    for line in out.getvalue().splitlines():
        assert line.startswith("T")
        for token in line[1:].split():
            assert token.startswith(":")
            assert token.count(":") == 2


def test_bbv_parser_rejects_malformed_lines():
    with pytest.raises(ValueError, match="must start with 'T'"):
        read_frequency_vectors(io.StringIO("X:1:2\n"))
    with pytest.raises(ValueError, match="malformed token"):
        read_frequency_vectors(io.StringIO("T 1:2\n"))
    with pytest.raises(ValueError, match="1-based"):
        read_frequency_vectors(io.StringIO("T :0:5\n"))


def test_bbv_parser_skips_comments_and_blanks():
    parsed = read_frequency_vectors(
        io.StringIO("# comment\n\nT :1:5 :2:3\n")
    )
    assert parsed == [{1: 5.0, 2: 3.0}]


def test_simpoints_weights_round_trip(pipeline):
    _, _, _, result = pipeline
    sp, wt = io.StringIO(), io.StringIO()
    write_simpoints(result, sp, wt)
    pairs = read_simpoints(io.StringIO(sp.getvalue()), io.StringIO(wt.getvalue()))
    assert [p[0] for p in pairs] == list(result.representatives)
    for (_, weight), ratio in zip(pairs, result.representation_ratios):
        assert weight == pytest.approx(ratio, abs=1e-5)


def test_read_simpoints_cluster_mismatch():
    with pytest.raises(ValueError, match="do not match"):
        read_simpoints(io.StringIO("5 0\n"), io.StringIO("1.0 1\n"))


def test_read_simpoints_weight_sum_checked():
    with pytest.raises(ValueError, match="sum to"):
        read_simpoints(
            io.StringIO("5 0\n6 1\n"), io.StringIO("0.2 0\n0.2 1\n")
        )


def test_selection_from_external_files_matches_internal(
    pipeline, small_workload
):
    """A full external round trip produces an identical selection."""
    log, intervals, _, result = pipeline
    config = SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB)
    internal = selection_from_simpoint(
        config, intervals, result, log.total_instructions
    )
    sp, wt = io.StringIO(), io.StringIO()
    write_simpoints(result, sp, wt)
    external = selection_from_simpoint_files(
        config,
        intervals,
        io.StringIO(sp.getvalue()),
        io.StringIO(wt.getvalue()),
        log.total_instructions,
    )
    assert [s.interval.index for s in external.selected] == [
        s.interval.index for s in internal.selected
    ]
    assert external.selection_fraction == pytest.approx(
        internal.selection_fraction
    )
    # And it scores identically under Eq. (1).
    assert selection_error(
        external, log, small_workload.timings
    ) == pytest.approx(
        selection_error(internal, log, small_workload.timings), abs=1e-3
    )


def test_selection_from_files_validates_interval_range(pipeline):
    log, intervals, _, _ = pipeline
    config = SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB)
    with pytest.raises(ValueError, match="references interval"):
        selection_from_simpoint_files(
            config,
            intervals,
            io.StringIO(f"{len(intervals) + 5} 0\n"),
            io.StringIO("1.0 0\n"),
            log.total_instructions,
        )
