"""repro.obs.bench: baseline schema and the regression gate."""

import json

import pytest

from repro.obs import bench


def _metrics(instr_per_s=1e6, sweep_s=2.0):
    return [
        bench.BenchMetric(
            "detailed_sim.instr_per_second", instr_per_s, "instr/s", "higher"
        ),
        bench.BenchMetric(
            "parallel_sweep.wall_seconds", sweep_s, "s", "lower"
        ),
    ]


def _baseline(instr_per_s=1e6, sweep_s=2.0, scale=0.25):
    return bench.make_baseline(_metrics(instr_per_s, sweep_s), scale=scale)


# -- schema ------------------------------------------------------------------


def test_make_baseline_shape():
    payload = _baseline()
    assert payload["schema"] == bench.SCHEMA
    assert payload["scale"] == 0.25
    assert set(payload["host"]) >= {"platform", "cpu_count", "python"}
    entry = payload["metrics"]["detailed_sim.instr_per_second"]
    assert entry == {
        "value": 1e6, "unit": "instr/s", "direction": "higher"
    }
    bench.validate_baseline(payload)


def test_metric_rejects_bad_direction_and_nan():
    with pytest.raises(ValueError, match="direction"):
        bench.BenchMetric("m", 1.0, "s", "sideways")
    with pytest.raises(ValueError, match="NaN"):
        bench.BenchMetric("m", float("nan"), "s", "lower")


def test_validate_rejects_malformed_payloads():
    with pytest.raises(ValueError, match="schema"):
        bench.validate_baseline({"schema": "other/v9"})
    with pytest.raises(ValueError, match="no metrics"):
        bench.validate_baseline({"schema": bench.SCHEMA, "metrics": {}})
    bad = _baseline()
    bad["metrics"]["parallel_sweep.wall_seconds"]["direction"] = "up"
    with pytest.raises(ValueError, match="direction"):
        bench.validate_baseline(bad)


def test_write_find_and_load_roundtrip(tmp_path):
    root = str(tmp_path)
    first = bench.write_baseline(_baseline(), root, date="2026-08-01")
    second = bench.write_baseline(_baseline(), root, date="2026-08-06")
    (tmp_path / "BENCH_garbage.json").write_text("{}")  # ignored: bad name
    assert bench.find_baselines(root) == [first, second]
    assert bench.newest_baseline(root) == second
    assert bench.newest_baseline(root, exclude=second) == first
    loaded = bench.load_baseline(second)
    assert loaded["metrics"] == _baseline()["metrics"]
    with pytest.raises(ValueError, match="date"):
        bench.baseline_path(root, "06/08/2026")


# -- comparison --------------------------------------------------------------


def test_within_threshold_is_ok():
    result = bench.compare(
        _baseline(instr_per_s=0.9e6, sweep_s=2.2), _baseline(),
        baseline_source="BENCH_2026-08-01.json",
    )
    assert result.ok
    assert {v.status for v in result.verdicts} == {"ok"}
    assert "RESULT: ok" in result.render()


def test_direction_aware_regressions():
    # Throughput fell 30% -> regression; wall time fell 30% -> improvement.
    result = bench.compare(
        _baseline(instr_per_s=0.7e6, sweep_s=1.4), _baseline()
    )
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["detailed_sim.instr_per_second"] == "regressed"
    assert statuses["parallel_sweep.wall_seconds"] == "improved"
    assert not result.ok
    assert "FAIL" in result.render()

    # And the mirror image: wall time rose 30% -> regression.
    result = bench.compare(
        _baseline(instr_per_s=1.4e6, sweep_s=2.6), _baseline()
    )
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["detailed_sim.instr_per_second"] == "improved"
    assert statuses["parallel_sweep.wall_seconds"] == "regressed"
    assert not result.ok


def test_threshold_is_tunable():
    current, base = _baseline(instr_per_s=0.7e6), _baseline()
    assert not bench.compare(current, base, threshold=0.2).ok
    assert bench.compare(current, base, threshold=0.5).ok
    with pytest.raises(ValueError, match="threshold"):
        bench.compare(current, base, threshold=1.5)


def test_missing_and_new_metrics_are_advisory():
    current = bench.make_baseline(
        _metrics()[:1]
        + [bench.BenchMetric("brand.new_seconds", 1.0, "s", "lower")],
        scale=0.25,
    )
    result = bench.compare(current, _baseline())
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["parallel_sweep.wall_seconds"] == "missing"
    assert statuses["brand.new_seconds"] == "new"
    # Metric-set drift is the expected state whenever the benchmark
    # suite itself changes between runs (a branch predating a metric
    # gating against a newer baseline, or vice versa): warn, don't fail.
    assert result.ok
    assert {v.name for v in result.metric_set_drift} == {
        "parallel_sweep.wall_seconds", "brand.new_seconds"
    }
    text = result.render()
    assert "metric set drifted" in text
    assert "RESULT: ok" in text


def test_cross_host_comparison_is_advisory():
    base = _baseline(instr_per_s=2e6)  # current is a 50% "regression"
    base["host"] = dict(base["host"], cpu_count=999, platform="other-os")
    result = bench.compare(_baseline(), base)
    assert result.advisory
    assert result.regressions  # still reported...
    assert result.ok  # ...but not enforced
    assert "advisory" in result.render()


def test_cross_scale_comparison_is_advisory():
    result = bench.compare(_baseline(scale=0.1), _baseline(scale=1.0))
    assert result.advisory
    assert any("scale differs" in r for r in result.advisory_reasons)


# -- the gate ----------------------------------------------------------------


def test_gate_with_no_prior_baseline_warns_but_passes(tmp_path):
    result = bench.gate_against_newest(_baseline(), str(tmp_path))
    assert result.ok
    assert result.baseline_source is None
    assert "no prior baseline" in result.render()


def test_gate_excludes_the_file_just_written(tmp_path):
    root = str(tmp_path)
    bench.write_baseline(_baseline(), root, date="2026-08-01")
    today = bench.write_baseline(
        _baseline(instr_per_s=0.5e6), root, date="2026-08-06"
    )
    # Excluding today's file, the slow run gates against the older
    # (faster) baseline and fails; without exclusion it self-compares.
    result = bench.gate_against_newest(
        bench.load_baseline(today), root, exclude=today
    )
    assert result.baseline_source == "BENCH_2026-08-01.json"
    assert not result.ok


def test_gate_result_render_lists_every_metric(tmp_path):
    root = str(tmp_path)
    bench.write_baseline(_baseline(), root, date="2026-08-01")
    result = bench.gate_against_newest(_baseline(), root)
    text = result.render()
    assert "detailed_sim.instr_per_second" in text
    assert "parallel_sweep.wall_seconds" in text
    assert "threshold 20%" in text


def test_baseline_files_are_valid_json_on_disk(tmp_path):
    path = bench.write_baseline(_baseline(), str(tmp_path))
    payload = json.loads(open(path).read())
    assert payload["schema"] == bench.SCHEMA
