"""Loop-reduced micro-kernel sampled simulation (the paper's suggested
combination with partial-invocation sampling)."""

import pytest

from repro.gpu.cache import CacheConfig
from repro.gpu.device import HD4000
from repro.sampling.pipeline import select_simpoints
from repro.sampling.simpoint import SimPointOptions
from repro.simulation.microkernels import simulate_selection_microkernels
from repro.simulation.sampled import simulate_full, simulate_selection

FAST = SimPointOptions(max_k=5, restarts=1, max_iterations=30)
CACHE = CacheConfig(size_bytes=64 * 1024)


@pytest.fixture(scope="module")
def setup(small_workload, small_app):
    selection = select_simpoints(small_workload, options=FAST).selection
    return small_app, small_workload, selection


def test_reduction_validates(setup):
    app, workload, selection = setup
    with pytest.raises(ValueError, match="loop_reduction"):
        simulate_selection_microkernels(
            app.name, app.sources, workload.log, selection, HD4000,
            loop_reduction=0.5,
        )


def test_microkernels_step_fewer_instructions(setup):
    app, workload, selection = setup
    plain = simulate_selection(
        app.name, app.sources, workload.log, selection, HD4000, CACHE
    )
    reduced = simulate_selection_microkernels(
        app.name, app.sources, workload.log, selection, HD4000,
        loop_reduction=4.0, cache_config=CACHE,
    )
    # Loop reduction multiplies the selection speedup.
    assert reduced.stepped_instructions < plain.simulated_instructions
    assert reduced.instruction_speedup > plain.instruction_speedup


def test_microkernels_stay_accurate(setup):
    app, workload, selection = setup
    full = simulate_full(
        app.name, app.sources, workload.log, HD4000, CACHE
    )
    reduced = simulate_selection_microkernels(
        app.name, app.sources, workload.log, selection, HD4000,
        loop_reduction=3.0, cache_config=CACHE,
    )
    error = (
        abs(full.measured_spi - reduced.projected_spi)
        / full.measured_spi
        * 100.0
    )
    # Accuracy degrades vs whole-invocation sampling but stays usable.
    assert error < 30.0


def test_reduction_one_equals_plain_sampling(setup):
    app, workload, selection = setup
    plain = simulate_selection(
        app.name, app.sources, workload.log, selection, HD4000, CACHE,
        seed=7,
    )
    reduced = simulate_selection_microkernels(
        app.name, app.sources, workload.log, selection, HD4000,
        loop_reduction=1.0, cache_config=CACHE, seed=7,
    )
    assert reduced.projected_spi == pytest.approx(
        plain.projected_spi, rel=0.05
    )


def test_higher_reduction_higher_speedup(setup):
    app, workload, selection = setup
    speedups = []
    for reduction in (1.0, 2.0, 8.0):
        result = simulate_selection_microkernels(
            app.name, app.sources, workload.log, selection, HD4000,
            loop_reduction=reduction,
        )
        speedups.append(result.instruction_speedup)
        assert result.loop_reduction == reduction
    assert speedups == sorted(speedups)
