"""Golden-file regression tests for the paper's headline outputs.

Table I (the benchmark roster) and the Figure 3 / Figure 4
characterization statistics are deterministic functions of the suite
specs and the seeded workload generator, so their values are pinned to
JSON goldens checked into ``tests/goldens/``.  Integer statistics must
match exactly; floating-point statistics match to a relative tolerance
of 1e-6 (tight enough to catch any algorithmic change, loose enough to
survive reassociation across numpy versions).

To regenerate after an *intentional* output change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

then review the golden diff like any other code change.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.analysis.characterize import characterize_suite
from repro.workloads import SUITE_SPECS

from conftest import MINI_SUITE, MINI_SUITE_SCALE

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
REGEN_ENV = "REPRO_REGEN_GOLDENS"

FLOAT_REL_TOL = 1e-6


def _table1_snapshot() -> dict:
    """Table I is pure spec data: source suite, application, domain."""
    return {
        "applications": [
            {"suite": s.suite, "name": s.name, "domain": s.domain}
            for s in SUITE_SPECS
        ]
    }


def _characterization_snapshot(mini_suite) -> dict:
    """Every Figure 3a-4c statistic over the deterministic mini-suite."""
    chars = characterize_suite(mini_suite, trial_seed=0)
    apps = {}
    for a in chars:
        apps[a.name] = {
            # Figure 3a: API call breakdown.
            "api_total_calls": a.api.total_calls,
            "api_kernel_calls": a.api.kernel_calls,
            "api_sync_calls": a.api.synchronization_calls,
            # Figure 3b: program structure.
            "unique_kernels": a.structure.unique_kernels,
            "unique_basic_blocks": a.structure.unique_basic_blocks,
            "static_instructions": a.structure.static_instructions,
            # Figure 3c: dynamic work.
            "kernel_invocations": a.instructions.kernel_invocations,
            "dynamic_basic_blocks": a.instructions.dynamic_basic_blocks,
            "dynamic_instructions": a.instructions.dynamic_instructions,
            # Figure 4a: dynamic opcode mix.
            "opcode_mix": {
                cls.value: frac
                for cls, frac in a.opcode_mix.dynamic_fractions().items()
            },
            # Figure 4b: SIMD width histogram.
            "simd_dynamic_counts": {
                str(w): c for w, c in sorted(a.simd.dynamic_counts.items())
            },
            # Figure 4c: memory traffic.
            "bytes_read": a.memory.bytes_read,
            "bytes_written": a.memory.bytes_written,
        }
    return {
        "scale": MINI_SUITE_SCALE,
        "trial_seed": 0,
        "apps": apps,
        "aggregates": {
            "mean_kernel_call_fraction": chars.mean_kernel_call_fraction(),
            "mean_sync_call_fraction": chars.mean_sync_call_fraction(),
            "mean_unique_kernels": chars.mean_unique_kernels(),
            "mean_unique_blocks": chars.mean_unique_blocks(),
            "mean_kernel_invocations": chars.mean_kernel_invocations(),
            "mean_dynamic_instructions": chars.mean_dynamic_instructions(),
            "mean_bytes_read": chars.mean_bytes_read(),
            "mean_bytes_written": chars.mean_bytes_written(),
            "suite_mix_fractions": {
                cls.value: frac
                for cls, frac in chars.suite_mix_fractions().items()
            },
        },
    }


def _assert_matches(actual, golden, path: str = "$") -> None:
    """Structural comparison: ints exact, floats to FLOAT_REL_TOL."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected object"
        assert sorted(actual) == sorted(golden), (
            f"{path}: keys differ: {sorted(actual)} vs {sorted(golden)}"
        )
        for key in golden:
            _assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), f"{path}: expected array"
        assert len(actual) == len(golden), f"{path}: length differs"
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, bool) or golden is None or isinstance(golden, str):
        assert actual == golden, f"{path}: {actual!r} != {golden!r}"
    elif isinstance(golden, int):
        assert actual == golden, f"{path}: {actual} != {golden} (exact)"
    else:
        assert actual == pytest.approx(golden, rel=FLOAT_REL_TOL), (
            f"{path}: {actual} != {golden} (rel {FLOAT_REL_TOL})"
        )


def _check_golden(name: str, snapshot: dict) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get(REGEN_ENV, "").strip() in ("1", "on", "yes", "true"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated golden {path.name}")
    assert path.is_file(), (
        f"missing golden {path}; run with {REGEN_ENV}=1 to create it"
    )
    golden = json.loads(path.read_text())
    _assert_matches(snapshot, golden)


def test_table1_matches_golden():
    _check_golden("table1", _table1_snapshot())


def test_mini_suite_characterization_matches_golden(mini_suite):
    assert tuple(a.name for a in mini_suite) == MINI_SUITE
    _check_golden(
        "mini_suite_characterization", _characterization_snapshot(mini_suite)
    )
