"""Synthetic kernel generation: shapes realized faithfully."""

import numpy as np
import pytest

from repro.isa.opcodes import OpClass
from repro.isa.program import execution_counts
from repro.workloads.kernels import (
    KernelShape,
    MemoryShape,
    MixWeights,
    WidthProfile,
    synthesize_kernel,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def _kernel(shape=None, seed=0, name="k"):
    return synthesize_kernel(name, shape or KernelShape(), _rng(seed))


def test_block_count_is_body_plus_two():
    kernel = _kernel(KernelShape(n_body_blocks=6))
    assert kernel.n_blocks == 8  # prologue + 6 body + epilogue


def test_generation_is_deterministic():
    a = _kernel(seed=42)
    b = _kernel(seed=42)
    assert a.static_instruction_count == b.static_instruction_count
    assert [len(blk) for blk in a.blocks] == [len(blk) for blk in b.blocks]


def test_different_seeds_differ():
    a = _kernel(seed=1)
    b = _kernel(seed=2)
    assert [len(blk) for blk in a.blocks] != [len(blk) for blk in b.blocks]


def test_loop_arg_scales_execution():
    kernel = _kernel()
    few = execution_counts(kernel.program, {"iters": 2}, _rng(5), kernel.n_blocks)
    many = execution_counts(kernel.program, {"iters": 20}, _rng(5), kernel.n_blocks)
    assert many.sum() > few.sum()
    # Prologue and epilogue run exactly once regardless.
    assert few[0] == many[0] == 1
    assert few[kernel.n_blocks - 1] == many[kernel.n_blocks - 1] == 1


def test_compute_heavy_mix_is_compute_heavy():
    compute = KernelShape(
        mix=MixWeights(move=0.05, logic=0.04, control=0.01, computation=0.90),
        memory=MemoryShape(read_intensity=0.0, write_intensity=0.0),
        n_body_blocks=12,
        instructions_per_block=(20, 30),
    )
    kernel = _kernel(compute, seed=3)
    counts = kernel.static_class_counts()
    body_total = sum(counts.values())
    assert counts[OpClass.COMPUTATION] / body_total > 0.6


def test_memory_intensity_produces_sends():
    heavy = KernelShape(
        memory=MemoryShape(read_intensity=2.0, write_intensity=2.0),
        n_body_blocks=10,
    )
    light = KernelShape(
        memory=MemoryShape(read_intensity=0.01, write_intensity=0.01),
        n_body_blocks=10,
    )
    heavy_sends = _kernel(heavy, seed=4).static_class_counts()[OpClass.SEND]
    light_sends = _kernel(light, seed=4).static_class_counts()[OpClass.SEND]
    assert heavy_sends > light_sends


def test_read_write_byte_asymmetry():
    write_heavy = KernelShape(
        memory=MemoryShape(
            read_intensity=0.05,
            write_intensity=2.0,
            read_bytes_per_channel=4,
            write_bytes_per_channel=16,
        ),
        n_body_blocks=10,
    )
    kernel = _kernel(write_heavy, seed=5)
    counts = np.ones(kernel.n_blocks, dtype=np.int64)
    read = int(counts @ kernel.arrays.bytes_read)
    written = int(counts @ kernel.arrays.bytes_written)
    assert written > read


def test_branch_probability_reduces_tail_counts():
    divergent = KernelShape(n_body_blocks=9, branch_probability=0.3)
    kernel = _kernel(divergent, seed=6)
    counts = execution_counts(
        kernel.program, {"iters": 100}, _rng(0), kernel.n_blocks
    )
    # Blocks inside the divergent tail run less than the always-taken ones.
    body = counts[1:-1]
    assert body.min() < body.max()


def test_simd_width_respected():
    kernel = _kernel(KernelShape(simd_width=8), seed=7)
    sends = [i for b in kernel.blocks for i in b if i.is_send]
    assert all(s.exec_size == 8 for s in sends)
    assert kernel.simd_width == 8


def test_width_profile_validation():
    with pytest.raises(ValueError, match="sum to > 0"):
        WidthProfile(w16=0, w8=0, w4=0, w2=0, w1=0).sample(_rng())


def test_mix_weights_validation():
    with pytest.raises(ValueError, match="sum to > 0"):
        MixWeights(move=0, logic=0, control=0, computation=0).as_array()


def test_kernel_shape_validation():
    with pytest.raises(ValueError, match="n_body_blocks"):
        KernelShape(n_body_blocks=0)
    with pytest.raises(ValueError, match="instructions_per_block"):
        KernelShape(instructions_per_block=(5, 2))
    with pytest.raises(ValueError, match="loop_arg"):
        KernelShape(loop_arg="missing", arg_names=("iters",))


def test_epilogue_ends_with_ret():
    kernel = _kernel()
    last = kernel.blocks[-1].instructions[-1]
    assert last.opcode.value == "ret"


def test_arg_names_propagated():
    kernel = _kernel()
    assert kernel.arg_names == ("iters", "n")
