"""Instruction model: widths, encodings, send payloads, footprints."""

import pytest

from repro.isa.instruction import (
    COMPACT_ENCODING_BYTES,
    EXEC_SIZES,
    NATIVE_ENCODING_BYTES,
    AccessPattern,
    AddressSpace,
    Instruction,
    MemoryDirection,
    SendMessage,
)
from repro.isa.opcodes import Opcode


def _read_send(bpc=4, pattern=AccessPattern.SEQUENTIAL):
    return SendMessage(
        direction=MemoryDirection.READ,
        bytes_per_channel=bpc,
        pattern=pattern,
    )


def test_exec_sizes_match_figure_4b():
    assert EXEC_SIZES == (1, 2, 4, 8, 16)


def test_invalid_exec_size_rejected():
    with pytest.raises(ValueError, match="exec_size"):
        Instruction(Opcode.ADD, exec_size=3)


def test_send_requires_message():
    with pytest.raises(ValueError, match="requires a SendMessage"):
        Instruction(Opcode.SEND, exec_size=8)


def test_non_send_rejects_message():
    with pytest.raises(ValueError, match="must not carry"):
        Instruction(Opcode.ADD, exec_size=8, send=_read_send())


def test_send_message_validation():
    with pytest.raises(ValueError, match="bytes_per_channel"):
        SendMessage(MemoryDirection.READ, bytes_per_channel=0)
    with pytest.raises(ValueError, match="stride"):
        SendMessage(MemoryDirection.READ, bytes_per_channel=4, stride=0)


def test_bytes_moved_scales_with_exec_size():
    msg = _read_send(bpc=4)
    assert msg.bytes_moved(16) == 64
    assert msg.bytes_moved(8) == 32
    assert msg.bytes_moved(1) == 4


def test_broadcast_moves_one_element():
    msg = _read_send(bpc=8, pattern=AccessPattern.BROADCAST)
    assert msg.bytes_moved(16) == 8


def test_atomic_reads_and_writes():
    msg = SendMessage(MemoryDirection.ATOMIC, bytes_per_channel=4)
    assert msg.reads and msg.writes
    instr = Instruction(Opcode.SEND, exec_size=8, send=msg)
    assert instr.bytes_read == 32
    assert instr.bytes_written == 32


def test_read_instruction_footprint():
    instr = Instruction(Opcode.SEND, exec_size=16, send=_read_send(4))
    assert instr.bytes_read == 64
    assert instr.bytes_written == 0


def test_alu_instruction_has_no_memory_footprint():
    instr = Instruction(Opcode.MAD, exec_size=16)
    assert instr.bytes_read == 0
    assert instr.bytes_written == 0


def test_encoding_sizes():
    assert Instruction(Opcode.MOV, compact=True).encoded_bytes == COMPACT_ENCODING_BYTES
    assert Instruction(Opcode.MOV, compact=False).encoded_bytes == NATIVE_ENCODING_BYTES


def test_sends_and_control_cannot_compact():
    send = Instruction(Opcode.SEND, exec_size=8, send=_read_send(), compact=True)
    assert send.encoded_bytes == NATIVE_ENCODING_BYTES
    ctrl = Instruction(Opcode.JMPI, exec_size=1, compact=True)
    assert ctrl.encoded_bytes == NATIVE_ENCODING_BYTES


def test_issue_cycles_scale_with_width():
    """GEN EUs are SIMD8: a SIMD16 op issues over two cycles."""
    narrow = Instruction(Opcode.ADD, exec_size=8)
    wide = Instruction(Opcode.ADD, exec_size=16)
    assert wide.issue_cycles == pytest.approx(2 * narrow.issue_cycles)
    scalar = Instruction(Opcode.ADD, exec_size=1)
    assert scalar.issue_cycles == narrow.issue_cycles  # still one slot


def test_disassembly_mentions_opcode_and_width():
    instr = Instruction(Opcode.ADD, exec_size=16, dst=20, srcs=(21, 22))
    text = instr.disassemble()
    assert "add(16)" in text
    assert "r20" in text


def test_instrumentation_flag_in_disassembly():
    instr = Instruction(Opcode.ADD, exec_size=1, is_instrumentation=True)
    assert "[gtpin]" in instr.disassemble()


def test_address_spaces_enumerated():
    assert {s.value for s in AddressSpace} == {
        "global", "constant", "shared", "image", "scratch",
    }
