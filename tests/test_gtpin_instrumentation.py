"""Instrumentation probe sequences (Section III-A/III-C mechanics)."""

import pytest

from repro.gtpin.instrumentation import (
    Capability,
    block_counter_probe,
    counter_flush_probe,
    memory_trace_probe,
    timer_probe,
)
from repro.isa.instruction import (
    AddressSpace,
    Instruction,
    MemoryDirection,
    SendMessage,
)
from repro.isa.opcodes import Opcode


def test_three_capabilities():
    assert {c.value for c in Capability} == {
        "block_counts", "timers", "memory_trace",
    }


def test_block_counter_is_scratch_rmw():
    probe = block_counter_probe()
    assert len(probe) == 3
    load, add, store = probe
    assert load.is_send and load.send.address_space is AddressSpace.SCRATCH
    assert load.send.reads
    assert add.opcode is Opcode.ADD and add.exec_size == 1
    assert store.is_send and store.send.writes
    assert all(i.is_instrumentation for i in probe)


def test_block_counter_probe_is_cheap_per_execution():
    """The per-block cost stays single-digit cycles + 8 scratch bytes."""
    probe = block_counter_probe()
    cycles = sum(i.issue_cycles for i in probe)
    bytes_moved = sum(i.bytes_read + i.bytes_written for i in probe)
    assert cycles <= 10
    assert bytes_moved == 8


def test_counter_flush_scales_with_block_count():
    small = counter_flush_probe(4)
    large = counter_flush_probe(64)
    assert len(large) > len(small)
    assert all(i.is_send and i.is_instrumentation for i in small + large)
    # Flush cost is per kernel, not per block execution.
    assert len(counter_flush_probe(1)) == 1


def test_timer_probe_is_single_cheap_read():
    probe = timer_probe()
    assert len(probe) == 1
    assert probe[0].issue_cycles < 10  # paper: <10 cycles observed
    assert probe[0].is_instrumentation


def test_memory_trace_probe_mirrors_traced_send():
    traced = Instruction(
        Opcode.SEND,
        exec_size=16,
        dst=1,
        srcs=(2,),
        send=SendMessage(MemoryDirection.READ, bytes_per_channel=4),
    )
    probe = memory_trace_probe(traced)
    assert len(probe) == 2
    stage, emit = probe
    assert stage.exec_size == traced.exec_size
    assert emit.is_send and emit.send.writes
    # Tracing a 16-lane send writes 16 address records.
    assert emit.bytes_written == 16 * 8
    assert all(i.is_instrumentation for i in probe)


def test_probes_never_touch_program_registers_below_r120():
    for probe in (block_counter_probe(), timer_probe(),
                  counter_flush_probe(8)):
        for instr in probe:
            if instr.dst is not None:
                assert instr.dst >= 120 or instr.dst == 0
