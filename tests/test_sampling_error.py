"""Eq. (1) SPI error: measured, projected, and adapters."""

import numpy as np
import pytest

from repro.sampling.error import (
    arrays_from_profile,
    arrays_from_run,
    measured_spi,
    projected_spi,
    selection_error,
    selection_error_on_run,
    spi_error_percent,
)
from repro.sampling.features import FeatureKind
from repro.sampling.intervals import Interval, IntervalScheme
from repro.sampling.selection import (
    SelectedInterval,
    Selection,
    SelectionConfig,
)


def _selection_over(intervals_spec, total_instr, total_inv):
    """intervals_spec: list of (start, stop, instr, ratio)."""
    selected = tuple(
        SelectedInterval(
            interval=Interval(index=i, start=s, stop=e, instruction_count=n),
            ratio=r,
        )
        for i, (s, e, n, r) in enumerate(intervals_spec)
    )
    return Selection(
        config=SelectionConfig(IntervalScheme.SINGLE_KERNEL, FeatureKind.KN),
        selected=selected,
        total_instructions=total_instr,
        n_intervals=total_inv,
        total_invocations=total_inv,
    )


def test_measured_spi():
    seconds = np.array([1.0, 2.0, 3.0])
    instrs = np.array([100.0, 200.0, 300.0])
    assert measured_spi(seconds, instrs) == pytest.approx(0.01)


def test_measured_spi_zero_instructions_rejected():
    with pytest.raises(ValueError):
        measured_spi(np.array([1.0]), np.array([0.0]))


def test_projection_exact_for_uniform_spi():
    """If every invocation has identical SPI, any selection projects 0% error."""
    seconds = np.full(10, 2.0)
    instrs = np.full(10, 200.0)
    selection = _selection_over([(0, 1, 200, 1.0)], 2000, 10)
    assert spi_error_percent(selection, seconds, instrs) == pytest.approx(0.0)


def test_projection_weights_by_ratio():
    # Two behaviours: SPI 0.01 (6 invocations) and SPI 0.03 (4 invocations).
    seconds = np.array([1.0] * 6 + [3.0] * 4)
    instrs = np.full(10, 100.0)
    selection = _selection_over(
        [(0, 1, 100, 0.6), (6, 7, 100, 0.4)], 1000, 10
    )
    projected = projected_spi(selection, seconds, instrs)
    assert projected == pytest.approx(0.6 * 0.01 + 0.4 * 0.03)
    # Measured = 18 s / 1000 instrs = 0.018; projection matches exactly.
    assert spi_error_percent(selection, seconds, instrs) == pytest.approx(0.0)


def test_bad_ratio_produces_error():
    seconds = np.array([1.0] * 6 + [3.0] * 4)
    instrs = np.full(10, 100.0)
    biased = _selection_over([(0, 1, 100, 1.0)], 1000, 10)
    error = spi_error_percent(biased, seconds, instrs)
    assert error == pytest.approx(abs(0.018 - 0.01) / 0.018 * 100)


def test_shape_mismatch_rejected():
    selection = _selection_over([(0, 1, 100, 1.0)], 100, 1)
    with pytest.raises(ValueError, match="align"):
        projected_spi(selection, np.ones(3), np.ones(2))


def test_arrays_from_profile(small_workload):
    seconds, instrs = arrays_from_profile(
        small_workload.log, small_workload.timings
    )
    assert seconds.shape == instrs.shape
    assert (instrs > 0).all()
    assert (seconds > 0).all()


def test_arrays_from_profile_length_mismatch(small_workload):
    import dataclasses

    truncated = dataclasses.replace(
        small_workload.timings, timings=small_workload.timings.timings[:-1]
    )
    with pytest.raises(ValueError, match="same program"):
        arrays_from_profile(small_workload.log, truncated)


def test_selection_error_matches_manual(small_workload):
    from repro.sampling.explorer import evaluate_config
    from repro.sampling.selection import SelectionConfig

    result = evaluate_config(
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        small_workload.log,
        small_workload.timings,
    )
    manual = selection_error(
        result.selection, small_workload.log, small_workload.timings
    )
    assert result.error_percent == pytest.approx(manual)


def test_selection_error_on_run(small_workload, small_app):
    from repro.cofluent.recorder import replay
    from repro.sampling.explorer import evaluate_config
    from repro.sampling.selection import SelectionConfig

    result = evaluate_config(
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        small_workload.log,
        small_workload.timings,
    )
    run = replay(small_workload.recording, trial_seed=99)
    error = selection_error_on_run(result.selection, run)
    assert 0 <= error < 50
    seconds, instrs = arrays_from_run(run)
    assert seconds.shape[0] == len(run.dispatches)


def test_selection_error_on_wrong_run_rejected(small_workload, tiny_app):
    from repro.gtpin.profiler import build_runtime
    from repro.sampling.explorer import evaluate_config
    from repro.sampling.selection import SelectionConfig

    result = evaluate_config(
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        small_workload.log,
        small_workload.timings,
    )
    other_run = build_runtime(tiny_app).run(tiny_app.host_program)
    with pytest.raises(ValueError, match="recorded program"):
        selection_error_on_run(result.selection, other_run)


# -- zero-second timing traces (regression: ZeroDivisionError) ---------------


def test_zero_seconds_raises_value_error_naming_workload():
    """A timing trace summing to 0 s used to crash with ZeroDivisionError
    deep in Eq. (1); it must be a ValueError naming the workload."""
    selection = _selection_over([(0, 1, 100, 1.0)], 1000, 10)
    seconds = np.zeros(10)
    instrs = np.full(10, 100.0)
    with pytest.raises(ValueError, match="broken-app"):
        spi_error_percent(selection, seconds, instrs, workload="broken-app")


def test_zero_seconds_without_workload_names_config():
    selection = _selection_over([(0, 1, 100, 1.0)], 1000, 10)
    with pytest.raises(ValueError, match="measured SPI is zero"):
        spi_error_percent(selection, np.zeros(10), np.full(10, 100.0))


def test_negative_or_zero_measured_spi_never_divides():
    selection = _selection_over([(0, 1, 100, 1.0)], 1000, 10)
    try:
        spi_error_percent(selection, np.zeros(10), np.full(10, 100.0))
    except ZeroDivisionError:  # pragma: no cover - the old failure mode
        pytest.fail("spi_error_percent divided by a zero measured SPI")
    except ValueError:
        pass


def test_run_length_checked_before_array_construction():
    """Regression: the replay-length check must fire before the arrays
    are built, so a wrong-length replay reports the real problem instead
    of whatever attribute error the array build stumbles into."""
    selection = _selection_over([(0, 1, 100, 1.0)], 1000, 10)

    class _StubRun:
        program_name = "stub"
        # Wrong length AND dispatches that would crash arrays_from_run.
        dispatches = [object()] * 3

    with pytest.raises(ValueError, match="recorded program"):
        selection_error_on_run(selection, _StubRun())
