"""The 25-application suite: Table I shape constraints."""

import pytest

from repro.workloads.suite import (
    FIGURE_5_SAMPLE_APPS,
    SUITE_NAMES,
    SUITE_SPECS,
    load_app,
    spec_by_name,
)


def test_exactly_25_applications():
    assert len(SUITE_SPECS) == 25
    assert len(set(SUITE_NAMES)) == 25


def test_suite_sources_match_table1():
    """15 CompuBench + 3 Sandra + 7 Sony Vegas."""
    by_suite = {}
    for spec in SUITE_SPECS:
        by_suite.setdefault(spec.suite, []).append(spec)
    assert len(by_suite["CompuBench CL 1.2 Desktop"]) == 6
    assert len(by_suite["CompuBench CL 1.2 Mobile"]) == 9
    assert len(by_suite["SiSoftware Sandra 2014"]) == 3
    assert len(by_suite["Sony Vegas Pro 2013"]) == 7


def test_unique_kernel_range_matches_paper():
    """Figure 3b: 1 to 50 unique kernels."""
    kernel_counts = [spec.n_kernels for spec in SUITE_SPECS]
    assert min(kernel_counts) == 1  # cb-gaussian-image
    assert max(kernel_counts) == 50  # cb-vision-facedetect
    mean = sum(kernel_counts) / len(kernel_counts)
    assert 7 <= mean <= 13  # paper: 10.2


def test_invocation_range_shape():
    """Figure 3c: 55 minimum invocations; wide spread."""
    invocations = [spec.n_invocations for spec in SUITE_SPECS]
    assert min(invocations) == 55
    assert max(invocations) >= 4000


def test_exactly_six_apps_use_simd4():
    """Figure 4b: 4-wide vectors appear in exactly 6 applications."""
    quad_apps = [s.name for s in SUITE_SPECS if s.widths.w4 > 0]
    assert len(quad_apps) == 6


def test_no_app_uses_simd2():
    """Figure 4b: 2-wide instructions are never used."""
    assert all(s.widths.w2 == 0 for s in SUITE_SPECS)


def test_proc_gpu_is_compute_stress_test():
    spec = spec_by_name("sandra-proc-gpu")
    assert spec.mix.computation >= 0.9


def test_bitcoin_has_low_kernel_call_share():
    spec = spec_by_name("cb-throughput-bitcoin")
    assert spec.other_calls_per_enqueue >= 15


def test_part_sim_32k_has_high_kernel_call_share():
    spec = spec_by_name("cb-physics-part-sim-32k")
    assert spec.other_calls_per_enqueue < 0.5
    assert spec.enqueues_per_sync >= 20


def test_juliaset_sync_heavy():
    spec = spec_by_name("cb-throughput-juliaset")
    assert spec.enqueues_per_sync < 1.0  # several syncs per enqueue
    assert spec.n_invocations < 150  # fewest API calls


def test_sony_regions_write_heavy():
    for i in range(1, 8):
        spec = spec_by_name(f"sonyvegas-proj-r{i}")
        memory = spec.memory
        write_bytes = memory.write_intensity * memory.write_bytes_per_channel
        read_bytes = memory.read_intensity * memory.read_bytes_per_channel
        assert write_bytes > read_bytes


def test_r5_most_write_skewed_region():
    ratios = {}
    for i in range(1, 8):
        m = spec_by_name(f"sonyvegas-proj-r{i}").memory
        ratios[i] = (m.write_intensity * m.write_bytes_per_channel) / (
            m.read_intensity * m.read_bytes_per_channel
        )
    assert max(ratios, key=ratios.get) == 5


def test_crypto_apps_read_heavy():
    for name in ("sandra-crypt-aes128", "sandra-crypt-aes256"):
        m = spec_by_name(name).memory
        assert (
            m.read_intensity * m.read_bytes_per_channel
            > 3 * m.write_intensity * m.write_bytes_per_channel
        )


def test_aes256_reads_more_than_aes128():
    m128 = spec_by_name("sandra-crypt-aes128").memory
    m256 = spec_by_name("sandra-crypt-aes256").memory
    assert (
        m256.read_intensity * m256.read_bytes_per_channel
        > m128.read_intensity * m128.read_bytes_per_channel
    )


def test_figure5_sample_apps_in_suite():
    assert len(FIGURE_5_SAMPLE_APPS) == 3
    for name in FIGURE_5_SAMPLE_APPS:
        assert name in SUITE_NAMES


def test_unknown_app_raises():
    with pytest.raises(KeyError, match="unknown application"):
        spec_by_name("not-a-real-app")


def test_load_app_scales():
    full = load_app("cb-gaussian-buffer", scale=1.0)
    small = load_app("cb-gaussian-buffer", scale=0.25)
    assert len(small.host_program) < len(full.host_program)
    assert len(small.sources) == len(full.sources)


def test_load_app_deterministic():
    a = load_app("cb-throughput-juliaset")
    b = load_app("cb-throughput-juliaset")
    assert [c.name for c in a.host_program] == [c.name for c in b.host_program]
