"""Selection / exploration JSON serialization."""

import json

import pytest

from repro.sampling.explorer import evaluate_config
from repro.sampling.features import FeatureKind
from repro.sampling.intervals import IntervalScheme
from repro.sampling.selection import SelectionConfig
from repro.sampling.serialize import (
    exploration_to_dict,
    exploration_to_json,
    selection_from_dict,
    selection_from_json,
    selection_to_dict,
    selection_to_json,
)
from repro.sampling.simpoint import SimPointOptions

FAST = SimPointOptions(max_k=5, restarts=1, max_iterations=30)


@pytest.fixture(scope="module")
def selection(small_workload):
    return evaluate_config(
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        small_workload.log,
        small_workload.timings,
        options=FAST,
    ).selection


def test_round_trip_preserves_everything(selection):
    restored = selection_from_json(selection_to_json(selection))
    assert restored.config == selection.config
    assert restored.total_instructions == selection.total_instructions
    assert restored.total_invocations == selection.total_invocations
    assert restored.n_intervals == selection.n_intervals
    assert len(restored.selected) == len(selection.selected)
    for a, b in zip(restored.selected, selection.selected):
        assert a.interval == b.interval
        assert a.ratio == b.ratio
    assert restored.selection_fraction == pytest.approx(
        selection.selection_fraction
    )
    assert restored.simulation_speedup == pytest.approx(
        selection.simulation_speedup
    )


def test_dict_contains_derived_metrics(selection):
    data = selection_to_dict(selection)
    assert data["format_version"] == 1
    assert data["config"]["label"] == "Sync-BB"
    assert data["selection_fraction"] == pytest.approx(
        selection.selection_fraction
    )
    assert all(
        item["first_invocation"] < item["last_invocation_exclusive"]
        for item in data["selected"]
    )


def test_json_is_valid_and_stable(selection):
    text = selection_to_json(selection)
    assert json.loads(text)  # parses
    assert selection_to_json(selection) == text  # deterministic


def test_unknown_version_rejected(selection):
    data = selection_to_dict(selection)
    data["format_version"] = 99
    with pytest.raises(ValueError, match="format version"):
        selection_from_dict(data)


def test_exploration_serialization(small_workload):
    from repro.sampling.explorer import explore
    from repro.sampling.selection import SelectionConfig

    configs = (
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        SelectionConfig(IntervalScheme.SINGLE_KERNEL, FeatureKind.KN),
    )
    ex = explore(
        small_workload.application_name,
        small_workload.log,
        small_workload.timings,
        configs=configs,
        options=FAST,
    )
    data = exploration_to_dict(ex)
    assert data["application"] == small_workload.application_name
    assert len(data["configs"]) == 2
    labels = {c["label"] for c in data["configs"]}
    assert labels == {"Sync-BB", "Single-KN"}
    # Each embedded selection round-trips.
    for entry in data["configs"]:
        restored = selection_from_dict(entry["selection"])
        assert restored.config.label == entry["label"]
    assert json.loads(exploration_to_json(ex))
