"""OpenCL runtime semantics: queueing, sync flushes, arg state, errors."""

import pytest

from repro.driver.driver import GPUDriver
from repro.driver.jit import KernelSource
from repro.gpu.device import HD4000
from repro.gpu.execution import GPUDevice
from repro.opencl.api import KERNEL_ENQUEUE, APICall
from repro.opencl.errors import (
    InvalidArgIndex,
    InvalidKernelArgs,
    InvalidKernelName,
    InvalidOperation,
    InvalidWorkSize,
)
from repro.opencl.host_program import HostProgram
from repro.opencl.runtime import OpenCLRuntime

from conftest import TinyApplication, build_tiny_kernel, make_host_program


def _runtime(app):
    runtime = OpenCLRuntime(GPUDriver(GPUDevice(HD4000)))
    runtime.load_sources(app.sources)
    return runtime


def test_run_executes_all_enqueues(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program, trial_seed=0)
    assert len(run.dispatches) == 6
    assert run.total_instructions > 0
    assert run.total_kernel_seconds > 0


def test_dispatch_order_matches_enqueue_order(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program)
    names = [d.kernel_name for d in run.dispatches]
    assert names == [
        "tiny.k0", "tiny.k1", "tiny.k0", "tiny.k1", "tiny.k0", "tiny.k1",
    ]


def test_sync_epochs_assigned(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program)
    # sync_every=3: first three dispatches epoch 0, next three epoch 1.
    epochs = [d.sync_epoch for d in run.dispatches]
    assert epochs == [0, 0, 0, 1, 1, 1]


def test_sync_call_indices_recorded(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program)
    for idx in run.sync_call_indices:
        assert run.api_calls[idx].is_synchronization


def test_enqueue_call_index_points_at_enqueue(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program)
    for dispatch in run.dispatches:
        call = run.api_calls[dispatch.enqueue_call_index]
        assert call.name == KERNEL_ENQUEUE
        assert call.args["kernel"] == dispatch.kernel_name


def test_args_reach_the_device(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program)
    assert run.dispatches[0].arg_values == {"iters": 4.0, "n": 256.0}
    assert run.dispatches[3].arg_values == {"iters": 6.0, "n": 128.0}


def test_arg_state_persists_between_enqueues():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)], name="a")
    # Re-enqueue without re-setting args: state persists.
    calls = list(app.host_program.calls)
    finish = calls.pop()  # trailing clFinish
    calls.append(APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 64}))
    calls.append(finish)
    program = HostProgram(name="a", calls=tuple(calls))
    runtime = _runtime(app)
    run = runtime.run(program)
    assert len(run.dispatches) == 2
    assert run.dispatches[1].arg_values == run.dispatches[0].arg_values


def test_enqueue_before_build_raises():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    program = HostProgram(
        name="p",
        calls=(
            APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 64}),
        ),
    )
    with pytest.raises(InvalidOperation, match="before clBuildProgram"):
        _runtime(app).run(program)


def test_enqueue_unset_args_raises():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    program = HostProgram(
        name="p",
        calls=(
            APICall("clBuildProgram"),
            APICall("clCreateKernel", {"kernel": "k"}),
            APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 64}),
        ),
    )
    with pytest.raises(InvalidKernelArgs, match="unset arguments"):
        _runtime(app).run(program)


def test_bad_work_size_raises():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    calls = [c for c in app.host_program.calls if c.name != KERNEL_ENQUEUE]
    calls.insert(
        -1, APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 0})
    )
    with pytest.raises(InvalidWorkSize):
        _runtime(app).run(HostProgram(name="p", calls=tuple(calls)))


def test_unknown_kernel_raises():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    program = HostProgram(
        name="p",
        calls=(
            APICall("clBuildProgram"),
            APICall("clCreateKernel", {"kernel": "nope"}),
        ),
    )
    with pytest.raises(InvalidKernelName):
        _runtime(app).run(program)


def test_bad_arg_index_raises():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    program = HostProgram(
        name="p",
        calls=(
            APICall("clBuildProgram"),
            APICall(
                "clSetKernelArg",
                {"kernel": "k", "arg_index": 9, "value": 1.0},
            ),
        ),
    )
    with pytest.raises(InvalidArgIndex):
        _runtime(app).run(program)


def test_interceptor_sees_every_call(tiny_app):
    runtime = _runtime(tiny_app)
    seen = []
    runtime.add_interceptor(lambda call: seen.append(call.name))
    runtime.run(tiny_app.host_program)
    assert len(seen) == len(tiny_app.host_program)


def test_trailing_work_flushed_without_sync():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    # Remove the trailing clFinish: work still executes at program end.
    calls = tuple(
        c for c in app.host_program.calls if c.name != "clFinish"
    )
    run = _runtime(app).run(HostProgram(name="p", calls=calls))
    assert len(run.dispatches) == 1


def test_same_seed_reproduces_run(tiny_app):
    run_a = _runtime(tiny_app).run(tiny_app.host_program, trial_seed=5)
    run_b = _runtime(tiny_app).run(tiny_app.host_program, trial_seed=5)
    assert run_a.total_instructions == run_b.total_instructions
    assert run_a.total_kernel_seconds == pytest.approx(
        run_b.total_kernel_seconds
    )


def test_different_seeds_differ(tiny_app):
    run_a = _runtime(tiny_app).run(tiny_app.host_program, trial_seed=5)
    run_b = _runtime(tiny_app).run(tiny_app.host_program, trial_seed=6)
    assert run_a.total_kernel_seconds != pytest.approx(
        run_b.total_kernel_seconds
    )


def test_measured_spi(tiny_app):
    run = _runtime(tiny_app).run(tiny_app.host_program)
    assert run.measured_spi == pytest.approx(
        run.total_kernel_seconds / run.total_instructions
    )


def test_init_hooks_run_once():
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    driver = GPUDriver(GPUDevice(HD4000))
    hooked = []
    OpenCLRuntime(driver, init_hooks=(lambda rt: hooked.append(rt),))
    assert len(hooked) == 1


def test_build_without_sources_raises():
    from repro.opencl.errors import BuildProgramFailure

    runtime = OpenCLRuntime(GPUDriver(GPUDevice(HD4000)))
    program = HostProgram(name="p", calls=(APICall("clBuildProgram"),))
    with pytest.raises(BuildProgramFailure, match="no program sources"):
        runtime.run(program)


def test_create_buffer_validates_size(tiny_app):
    from repro.opencl.errors import InvalidMemObject

    runtime = _runtime(tiny_app)
    program = HostProgram(
        name="p", calls=(APICall("clCreateBuffer", {"size": 0}),)
    )
    with pytest.raises(InvalidMemObject, match="non-positive size"):
        runtime.run(program)
