"""repro.telemetry: spans, counters, registry, and exporters."""

import json
import threading
import time

import pytest

from repro import telemetry


@pytest.fixture
def tm():
    """A fresh enabled registry, always restored to disabled afterwards."""
    registry = telemetry.enable()
    yield registry
    telemetry.disable()


# -- spans -------------------------------------------------------------------


def test_span_nesting_parents_and_depth(tm):
    with tm.span("outer", category="t") as outer:
        with tm.span("middle") as middle:
            with tm.span("inner") as inner:
                pass
    spans = {s.name: s for s in tm.spans()}
    assert spans["outer"].parent_id is None
    assert spans["middle"].parent_id == spans["outer"].span_id
    assert spans["inner"].parent_id == spans["middle"].span_id
    assert (spans["outer"].depth, spans["middle"].depth,
            spans["inner"].depth) == (0, 1, 2)
    assert outer.span_id != middle.span_id != inner.span_id


def test_span_timestamps_are_ordered_and_contained(tm):
    with tm.span("outer"):
        with tm.span("inner"):
            time.sleep(0.001)
    spans = {s.name: s for s in tm.spans()}
    outer, inner = spans["outer"], spans["inner"]
    assert outer.start_ns <= inner.start_ns
    assert inner.end_ns <= outer.end_ns
    assert inner.duration_ns > 0
    assert outer.duration_seconds >= inner.duration_seconds


def test_sibling_spans_share_parent_in_order(tm):
    with tm.span("parent") as parent:
        with tm.span("first"):
            pass
        with tm.span("second"):
            pass
    records = [s for s in tm.spans() if s.parent_id == parent.span_id]
    assert [s.name for s in records] == ["first", "second"]
    assert records[0].start_ns <= records[1].start_ns


def test_span_annotate_and_error_marking(tm):
    with pytest.raises(ValueError):
        with tm.span("failing", category="t", app="x") as span:
            span.annotate(items=3)
            raise ValueError("boom")
    (record,) = tm.spans()
    assert record.args["app"] == "x"
    assert record.args["items"] == 3
    assert record.args["error"] == "ValueError"


def test_traced_decorator_respects_activation():
    @telemetry.traced(category="t")
    def workload():
        return 41 + 1

    assert workload() == 42          # disabled: no registry, still works
    registry = telemetry.enable()
    try:
        assert workload() == 42
        names = [s.name for s in registry.spans()]
        assert len(names) == 1 and names[0].endswith("workload")
    finally:
        telemetry.disable()


def test_spans_on_other_threads_form_their_own_trees(tm):
    done = threading.Event()

    def worker():
        with tm.span("thread-root"):
            with tm.span("thread-child"):
                pass
        done.set()

    with tm.span("main-root"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert done.wait(1)
    spans = {s.name: s for s in tm.spans()}
    # The worker's root must NOT be parented under the main thread's span.
    assert spans["thread-root"].parent_id is None
    assert spans["thread-child"].parent_id == spans["thread-root"].span_id
    assert spans["thread-root"].thread_id != spans["main-root"].thread_id


# -- counters ----------------------------------------------------------------


def test_counter_accumulation(tm):
    tm.inc("events")
    tm.inc("events", 4)
    tm.inc("bytes", 2.5)
    assert tm.counter_value("events") == 5
    assert tm.counter_value("bytes") == 2.5
    assert tm.counter_value("never-touched") == 0.0


def test_gauge_observation_statistics(tm):
    for value in (3.0, 1.0, 2.0):
        tm.observe("depth", value)
    gauge = tm.counters.gauge("depth")
    assert gauge.last == 2.0
    assert gauge.count == 3
    assert gauge.minimum == 1.0
    assert gauge.maximum == 3.0
    assert gauge.mean == pytest.approx(2.0)


def test_counter_sample_trail_is_bounded(tm):
    from repro.telemetry.counters import MAX_SAMPLES

    counter = tm.counters.counter("hot")
    for _ in range(4 * MAX_SAMPLES):
        counter.inc()
    assert counter.value == 4 * MAX_SAMPLES  # values stay exact
    assert len(counter.samples) <= MAX_SAMPLES + 1  # trail stays bounded


# -- disabled mode -----------------------------------------------------------


def test_disabled_is_the_default_and_a_noop():
    assert telemetry.get() is telemetry.DISABLED
    assert not telemetry.is_enabled()
    tm = telemetry.get()
    # span() returns the shared NullSpan: no allocation, no recording.
    span = tm.span("anything", category="x", cost=1)
    assert span is telemetry.NULL_SPAN
    with span:
        tm.inc("counter", 100)
        tm.observe("gauge", 1.0)
    assert tm.spans() == []
    assert tm.counter_value("counter") == 0.0


def test_disabled_timed_still_measures_wall_time():
    tm = telemetry.get()
    assert not tm.enabled
    with tm.timed("work") as timer:
        time.sleep(0.002)
    assert timer.duration_seconds >= 0.001
    assert tm.spans() == []  # measured, not recorded


def test_enable_disable_roundtrip_and_session():
    registry = telemetry.enable()
    assert telemetry.get() is registry
    telemetry.disable()
    assert telemetry.get() is telemetry.DISABLED
    with telemetry.session() as tm:
        assert telemetry.get() is tm
        with tm.span("inside"):
            pass
        assert len(tm.spans()) == 1
    assert telemetry.get() is telemetry.DISABLED


def test_disabled_overhead_smoke():
    """The zero-overhead contract: a disabled span + counter op must cost
    on the order of a function call.  200k iterations of both together
    should finish orders of magnitude under the (very generous) bound."""
    tm = telemetry.get()
    assert not tm.enabled
    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        with tm.span("hot"):
            tm.inc("hot.counter")
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"disabled-mode overhead too high: {elapsed:.3f}s"
    per_op_us = elapsed / iterations * 1e6
    assert per_op_us < 10.0, f"{per_op_us:.2f}us per disabled span+inc"


# -- exporters ---------------------------------------------------------------


def _populated_registry():
    registry = telemetry.enable()
    with registry.span("root", category="cli", app="demo"):
        with registry.span("child", category="gtpin"):
            registry.inc("gtpin.records", 3)
        registry.observe("queue.depth", 2.0)
    return registry


def test_chrome_trace_is_wellformed_json():
    registry = _populated_registry()
    try:
        trace = telemetry.to_chrome_trace(registry)
        parsed = json.loads(json.dumps(trace))  # round-trips cleanly
    finally:
        telemetry.disable()
    events = parsed["traceEvents"]
    span_events = [e for e in events if e["ph"] == "X"]
    counter_events = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in span_events} == {"root", "child"}
    assert counter_events, "counters must export as 'C' events"
    for event in span_events:
        for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            assert field in event
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    for event in counter_events:
        for field in ("name", "ph", "ts", "pid", "tid", "args"):
            assert field in event


def test_chrome_trace_nesting_survives_export():
    registry = _populated_registry()
    try:
        events = telemetry.chrome_trace_events(registry)
    finally:
        telemetry.disable()
    by_name = {e["name"]: e for e in events if e["ph"] == "X"}
    root, child = by_name["root"], by_name["child"]
    assert root["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3
    assert root["tid"] == child["tid"]


def test_write_chrome_trace_and_jsonl(tmp_path):
    registry = _populated_registry()
    try:
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "events.jsonl"
        telemetry.write_chrome_trace(registry, str(trace_path))
        telemetry.write_jsonl(registry, str(jsonl_path))
    finally:
        telemetry.disable()
    data = json.loads(trace_path.read_text())
    assert data["traceEvents"]
    lines = jsonl_path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert {r["type"] for r in records} >= {"span", "counter", "gauge"}
    spans = [r for r in records if r["type"] == "span"]
    assert {s["name"] for s in spans} == {"root", "child"}


def test_exported_args_are_json_safe():
    registry = telemetry.enable()
    try:
        with registry.span("s", payload=object(), n=1, ok=True, label="x"):
            pass
        events = telemetry.chrome_trace_events(registry)
    finally:
        telemetry.disable()
    (span,) = [e for e in events if e["ph"] == "X"]
    json.dumps(span)  # must not raise
    assert span["args"]["n"] == 1
    assert isinstance(span["args"]["payload"], str)


def test_span_tree_summary_aggregates_siblings():
    registry = telemetry.enable()
    try:
        with registry.span("outer"):
            for _ in range(3):
                with registry.span("repeated"):
                    pass
        summary = telemetry.span_tree_summary(registry)
        counters = telemetry.counters_summary(registry)
    finally:
        telemetry.disable()
    assert "outer" in summary
    assert "repeated x3" in summary
    assert "ms" in summary
    assert counters == "counters: (none)"


def test_counters_summary_lists_values():
    registry = telemetry.enable()
    try:
        registry.inc("a.count", 7)
        registry.observe("b.gauge", 1.25)
        text = telemetry.counters_summary(registry)
    finally:
        telemetry.disable()
    assert "a.count" in text and "7" in text
    assert "b.gauge" in text and "1.25" in text


# -- instrumented stack (unit level) ----------------------------------------


def test_profiling_stack_emits_spans_and_counters():
    from repro.gtpin.profiler import profile
    from repro.workloads import load_app

    app = load_app("cb-gaussian-image", scale=0.5)
    with telemetry.session() as tm:
        profile(app)
        names = {s.name for s in tm.spans()}
        assert "gtpin.profile" in names
        assert "runtime.run" in names
        assert "gtpin.post_process" in names
        assert any(n.startswith("gtpin.tool.") for n in names)
        assert tm.counter_value("opencl.api_calls") > 0
        assert tm.counter_value("gtpin.trace_buffer.records") > 0
        assert tm.counter_value("gtpin.trace_buffer.drains") >= 1
        assert tm.counter_value("gtpin.instrumented_instructions") > 0


def test_disabled_profiling_identical_results():
    """Telemetry off (default) must not change behaviour: the same seed
    yields bit-identical reports with capture on and off."""
    from repro.gtpin.profiler import profile
    from repro.workloads import load_app

    app = load_app("cb-gaussian-image", scale=0.5)
    plain = profile(app, trial_seed=3)
    with telemetry.session():
        captured = profile(app, trial_seed=3)
    assert plain.run.total_instructions == captured.run.total_instructions
    assert plain.report.record_count == captured.report.record_count
    assert (
        plain.report["opcode_mix"].dynamic_fractions()
        == captured.report["opcode_mix"].dynamic_fractions()
    )
