"""Device specs: the paper's HD4000/HD4600 and the frequency ladder."""

import pytest

from repro.gpu.device import (
    FIGURE_8_FREQUENCIES_MHZ,
    HD4000,
    HD4600,
    DeviceSpec,
    device_by_name,
)


def test_hd4000_matches_paper():
    """Section IV-A: 16 EUs, 8 threads/EU = 128 HW threads, 1150 MHz."""
    assert HD4000.eu_count == 16
    assert HD4000.threads_per_eu == 8
    assert HD4000.hardware_threads == 128
    assert HD4000.frequency_mhz == 1150.0
    assert HD4000.generation == "Ivy Bridge"


def test_hd4600_matches_paper():
    """Section V-E: the Haswell HD4600 has 20 EUs."""
    assert HD4600.eu_count == 20
    assert HD4600.generation == "Haswell"
    assert HD4600.eu_count > HD4000.eu_count


def test_figure8_frequency_ladder():
    assert FIGURE_8_FREQUENCIES_MHZ == (1000.0, 850.0, 700.0, 550.0, 350.0)
    assert all(f < HD4000.frequency_mhz for f in FIGURE_8_FREQUENCIES_MHZ)


def test_at_frequency_preserves_everything_else():
    slow = HD4000.at_frequency(350.0)
    assert slow.frequency_mhz == 350.0
    assert slow.eu_count == HD4000.eu_count
    assert slow.memory_bandwidth_gbps == HD4000.memory_bandwidth_gbps
    assert "350" in slow.name


def test_frequency_hz():
    assert HD4000.frequency_hz == pytest.approx(1.15e9)


def test_validation():
    with pytest.raises(ValueError):
        DeviceSpec("x", "g", eu_count=0, threads_per_eu=8,
                   frequency_mhz=1000, memory_bandwidth_gbps=25, llc_kb=256)
    with pytest.raises(ValueError):
        DeviceSpec("x", "g", eu_count=16, threads_per_eu=8,
                   frequency_mhz=0, memory_bandwidth_gbps=25, llc_kb=256)


def test_device_by_name():
    assert device_by_name("hd4000") is HD4000
    assert device_by_name("HD4600") is HD4600
    with pytest.raises(KeyError, match="unknown device"):
        device_by_name("hd9999")
