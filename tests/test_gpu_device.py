"""Device specs: the paper's HD4000/HD4600 and the frequency ladder."""

import pytest

from repro.gpu.device import (
    FIGURE_8_FREQUENCIES_MHZ,
    HD4000,
    HD4600,
    DeviceSpec,
    device_by_name,
)


def test_hd4000_matches_paper():
    """Section IV-A: 16 EUs, 8 threads/EU = 128 HW threads, 1150 MHz."""
    assert HD4000.eu_count == 16
    assert HD4000.threads_per_eu == 8
    assert HD4000.hardware_threads == 128
    assert HD4000.frequency_mhz == 1150.0
    assert HD4000.generation == "Ivy Bridge"


def test_hd4600_matches_paper():
    """Section V-E: the Haswell HD4600 has 20 EUs."""
    assert HD4600.eu_count == 20
    assert HD4600.generation == "Haswell"
    assert HD4600.eu_count > HD4000.eu_count


def test_figure8_frequency_ladder():
    assert FIGURE_8_FREQUENCIES_MHZ == (1000.0, 850.0, 700.0, 550.0, 350.0)
    assert all(f < HD4000.frequency_mhz for f in FIGURE_8_FREQUENCIES_MHZ)


def test_at_frequency_preserves_everything_else():
    slow = HD4000.at_frequency(350.0)
    assert slow.frequency_mhz == 350.0
    assert slow.eu_count == HD4000.eu_count
    assert slow.memory_bandwidth_gbps == HD4000.memory_bandwidth_gbps
    assert "350" in slow.name


def test_frequency_hz():
    assert HD4000.frequency_hz == pytest.approx(1.15e9)


def test_validation():
    with pytest.raises(ValueError):
        DeviceSpec("x", "g", eu_count=0, threads_per_eu=8,
                   frequency_mhz=1000, memory_bandwidth_gbps=25, llc_kb=256)
    with pytest.raises(ValueError):
        DeviceSpec("x", "g", eu_count=16, threads_per_eu=8,
                   frequency_mhz=0, memory_bandwidth_gbps=25, llc_kb=256)


def test_device_by_name():
    assert device_by_name("hd4000") is HD4000
    assert device_by_name("HD4600") is HD4600
    with pytest.raises(KeyError, match="unknown device"):
        device_by_name("hd9999")


def test_device_by_name_normalizes_whitespace_and_punctuation():
    """Marketing names resolve however the separators are written.

    ``"intelhd4000"`` used to miss because lookup only stripped spaces
    from the *registered* names, not the query.
    """
    for alias in ("intelhd4000", "Intel HD 4000", "intel-hd-4000",
                  "intel_hd_4000", " Intel  HD 4000 "):
        assert device_by_name(alias) is HD4000
    assert device_by_name("IntelHD4600") is HD4600


@pytest.mark.parametrize("field", ["threads_per_eu", "llc_kb"])
@pytest.mark.parametrize("bad", [0, -1])
def test_validation_rejects_nonpositive_capacity_fields(field, bad):
    kwargs = dict(eu_count=16, threads_per_eu=8, frequency_mhz=1000,
                  memory_bandwidth_gbps=25, llc_kb=256)
    kwargs[field] = bad
    with pytest.raises(ValueError, match=field):
        DeviceSpec("x", "g", **kwargs)


def test_validation_rejects_negative_wavefront_width():
    with pytest.raises(ValueError, match="wavefront_width"):
        DeviceSpec("x", "g", eu_count=16, threads_per_eu=8,
                   frequency_mhz=1000, memory_bandwidth_gbps=25,
                   llc_kb=256, wavefront_width=-64)


def test_chained_at_frequency_does_not_stack_suffixes():
    """Re-clocking a re-clocked device replaces the @MHz tag."""
    twice = HD4000.at_frequency(700.0).at_frequency(350.0)
    assert twice.frequency_mhz == 350.0
    assert twice.name == HD4000.name + "@350MHz"
    assert twice.name.count("@") == 1
    assert twice.base_name == HD4000.name


def test_figure8_ladder_rungs_resolve_through_registry():
    """Every ladder rung's name round-trips via device_by_name."""
    for mhz in FIGURE_8_FREQUENCIES_MHZ:
        rung = HD4000.at_frequency(mhz)
        resolved = device_by_name(f"hd4000@{mhz:g}MHz")
        assert resolved == rung
        assert resolved.frequency_mhz == mhz
        assert resolved.provider == "gen"
        # The rung's own display name resolves too.
        assert device_by_name(rung.name) == rung


def test_items_per_thread_threading_models():
    """GEN packs by compile width; wave64 devices are fixed 64-wide."""
    assert HD4000.items_per_thread(8) == 8
    assert HD4000.items_per_thread(16) == 16
    from repro.gpu.providers.wave64 import W64_CU28

    assert W64_CU28.items_per_thread(8) == 64
    assert W64_CU28.items_per_thread(16) == 64
