"""``gtpin serve``: protocol, queue scheduling, HTTP endpoint, CLI.

The fast tests drive the queue and the HTTP surface with a stub
execute function (no profiling), so scheduling semantics -- priority
order, cross-client fairness, bounded-queue backpressure, cooperative
cancellation -- are asserted deterministically.  The slow acceptance
test at the bottom runs the real pipeline: four concurrent clients,
a mixed mini-suite workload, an active fault plan, and the invariant
the issue names -- zero lost jobs.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.cli import main
from repro.obs import events as obs_events
from repro.obs import live
from repro.obs.metrics import metric_name, parse_exposition
from repro.obs.top import render_top
from repro.serve import (
    JobQueue,
    JobSpec,
    ProtocolError,
    QueueFull,
    QueueFullError,
    ServeClient,
    ServeDaemon,
    ServeError,
)
from repro.serve.protocol import JobState, job_view
from repro.serve.work import JobCancelled

APP = "cb-gaussian-buffer"


# -- protocol ----------------------------------------------------------------


def test_spec_from_json_minimal_applies_defaults():
    spec = JobSpec.from_json({"kind": "profile", "app": APP})
    assert spec.scale == 1.0
    assert spec.device == "hd4000"
    assert spec.priority == 0
    assert spec.client == "anon"
    assert spec.to_json()["kind"] == "profile"


def test_spec_from_json_coerces_numeric_strings():
    spec = JobSpec.from_json(
        {"kind": "select", "app": APP, "scale": "0.5", "seed": "3",
         "priority": "7"}
    )
    assert (spec.scale, spec.seed, spec.priority) == (0.5, 3, 7)


@pytest.mark.parametrize(
    "payload",
    [
        "not an object",
        {"app": APP},
        {"kind": "profile"},
        {"kind": "profile", "app": APP, "bogus": 1},
        {"kind": "nope", "app": APP},
        {"kind": "profile", "app": "not-an-app"},
        {"kind": "profile", "app": APP, "scale": 0.0},
        {"kind": "profile", "app": APP, "scale": 5.0},
        {"kind": "profile", "app": APP, "scale": "huge"},
        {"kind": "profile", "app": APP, "device": "rtx4090"},
        {"kind": "profile", "app": APP, "priority": 101},
        {"kind": "profile", "app": APP, "priority": -101},
        {"kind": "profile", "app": APP, "jobs": -1},
        {"kind": "select", "app": APP, "scheme": "nope"},
        {"kind": "select", "app": APP, "feature": "nope"},
        {"kind": "profile", "app": APP, "client": 7},
    ],
)
def test_spec_rejects_malformed_payloads(payload):
    with pytest.raises(ProtocolError):
        JobSpec.from_json(payload)


def test_job_view_derives_queue_and_run_seconds():
    spec = JobSpec(kind="profile", app=APP)
    view = job_view(
        "j1", spec, JobState.DONE,
        submitted_unix=10.0, started_unix=12.5, ended_unix=14.0,
        result={"ok": True},
    )
    assert view["queue_seconds"] == 2.5
    assert view["run_seconds"] == 1.5
    assert view["result"] == {"ok": True}
    assert JobState.DONE in JobState.TERMINAL
    assert JobState.RUNNING not in JobState.TERMINAL


# -- queue scheduling (stubbed work) -----------------------------------------


class _StubWork:
    """Deterministic execute stub driven by events, not wall clock.

    Every job waits for ``release`` before completing; the completion
    order (recorded by ``seed``) is therefore exactly the scheduler's
    dispatch order.  ``fail_seeds`` raise; a set cancel token raises
    :class:`JobCancelled` like the real work function's checkpoints.
    """

    def __init__(self, fail_seeds: tuple[int, ...] = ()) -> None:
        self.release = threading.Event()
        self.started: list[int] = []
        self.finished: list[int] = []
        self.fail_seeds = fail_seeds
        self._lock = threading.Lock()

    def __call__(self, spec: JobSpec, cancel: threading.Event) -> dict:
        with self._lock:
            self.started.append(spec.seed)
        while not self.release.wait(timeout=0.02):
            if cancel.is_set():
                raise JobCancelled()
        if cancel.is_set():
            raise JobCancelled()
        if spec.seed in self.fail_seeds:
            raise RuntimeError(f"boom seed={spec.seed}")
        with self._lock:
            self.finished.append(spec.seed)
        return {"seed": spec.seed}


@pytest.fixture
def make_queue():
    queues = []

    def factory(execute, **kwargs) -> JobQueue:
        queue = JobQueue(execute, **kwargs)
        queue.start()
        queues.append(queue)
        return queue

    yield factory
    for queue in queues:
        queue.stop(timeout=5.0)


def _spec(seed: int = 0, priority: int = 0, client: str = "anon") -> JobSpec:
    return JobSpec(
        kind="profile", app=APP, scale=0.1, seed=seed,
        priority=priority, client=client,
    )


def _wait_state(queue: JobQueue, job_id: str, state: str,
                timeout: float = 5.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = queue.get(job_id)
        if view["state"] == state:
            return view
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {state!r}: {queue.get(job_id)}"
    )


def test_queue_rejects_bad_construction():
    with pytest.raises(ValueError):
        JobQueue(lambda s, c: {}, workers=0)
    with pytest.raises(ValueError):
        JobQueue(lambda s, c: {}, capacity=0)


def test_priority_orders_dispatch(make_queue):
    work = _StubWork()
    queue = make_queue(work, workers=1, capacity=16)
    blocker = queue.submit(_spec(seed=1, priority=100))
    _wait_state(queue, blocker["id"], JobState.RUNNING)
    # Queued while the only worker is busy: dispatch order is the
    # heap's, not arrival order.
    queue.submit(_spec(seed=2, priority=-5))
    queue.submit(_spec(seed=3, priority=10))
    queue.submit(_spec(seed=4, priority=0))
    work.release.set()
    assert queue.join(timeout=10.0)
    assert work.started == [1, 3, 4, 2]


def test_fairness_interleaves_clients(make_queue):
    work = _StubWork()
    queue = make_queue(work, workers=1, capacity=16)
    blocker = queue.submit(_spec(seed=1, client="warm"))
    _wait_state(queue, blocker["id"], JobState.RUNNING)
    # Client "bulk" floods three jobs; client "solo" submits one later.
    # Rank (same-client jobs already pending) interleaves: bulk's
    # first, then solo's only, then the rest of bulk's backlog.
    queue.submit(_spec(seed=10, client="bulk"))
    queue.submit(_spec(seed=11, client="bulk"))
    queue.submit(_spec(seed=12, client="bulk"))
    queue.submit(_spec(seed=20, client="solo"))
    work.release.set()
    assert queue.join(timeout=10.0)
    assert work.started == [1, 10, 20, 11, 12]


def test_backpressure_bounded_queue_raises_queue_full(make_queue):
    work = _StubWork()
    with telemetry.session() as tm:
        queue = make_queue(work, workers=1, capacity=2)
        blocker = queue.submit(_spec(seed=1))
        _wait_state(queue, blocker["id"], JobState.RUNNING)
        queue.submit(_spec(seed=2))
        queue.submit(_spec(seed=3))
        with pytest.raises(QueueFull):
            queue.submit(_spec(seed=4))
        assert tm.counter_value("serve.jobs_rejected") == 1
        work.release.set()
        assert queue.join(timeout=10.0)
        # The rejected job was never admitted; the admitted three ran.
        assert sorted(work.finished) == [1, 2, 3]
        assert tm.counter_value("serve.jobs_submitted") == 3


def test_cancel_queued_job_is_immediate(make_queue):
    work = _StubWork()
    queue = make_queue(work, workers=1, capacity=16)
    blocker = queue.submit(_spec(seed=1))
    _wait_state(queue, blocker["id"], JobState.RUNNING)
    victim = queue.submit(_spec(seed=2))
    view = queue.cancel(victim["id"])
    assert view["state"] == JobState.CANCELLED
    assert view["ended_unix"] is not None
    work.release.set()
    assert queue.join(timeout=10.0)
    # The cancelled job never started.
    assert work.started == [1]
    assert queue.get(victim["id"])["state"] == JobState.CANCELLED


def test_cancel_running_job_aborts_at_checkpoint(make_queue):
    work = _StubWork()
    queue = make_queue(work, workers=1, capacity=16)
    job = queue.submit(_spec(seed=1))
    _wait_state(queue, job["id"], JobState.RUNNING)
    view = queue.cancel(job["id"])
    assert view["cancel_requested"]
    final = _wait_state(queue, job["id"], JobState.CANCELLED)
    assert final["ended_unix"] is not None
    assert work.finished == []


def test_failed_job_reports_error(make_queue):
    work = _StubWork(fail_seeds=(7,))
    work.release.set()
    queue = make_queue(work, workers=1, capacity=16)
    job = queue.submit(_spec(seed=7))
    view = _wait_state(queue, job["id"], JobState.FAILED)
    assert "RuntimeError: boom seed=7" in view["error"]


def test_every_submitted_job_reaches_exactly_one_terminal_state(make_queue):
    """The zero-lost-jobs invariant, stubbed: submit a mixed batch
    (successes, failures, cancellations), drain, and account for every
    job exactly once."""
    work = _StubWork(fail_seeds=(3, 6))
    with telemetry.session() as tm:
        queue = make_queue(work, workers=2, capacity=32)
        blocker = queue.submit(_spec(seed=0, priority=100))
        _wait_state(queue, blocker["id"], JobState.RUNNING)
        submitted = [blocker]
        for seed in range(1, 10):
            submitted.append(
                queue.submit(_spec(seed=seed, client=f"c{seed % 3}"))
            )
        cancelled_ids = {submitted[4]["id"], submitted[8]["id"]}
        for job_id in cancelled_ids:
            queue.cancel(job_id)
        work.release.set()
        assert queue.join(timeout=15.0)
        views = queue.list()
        assert len(views) == len(submitted) == 10
        states = [v["state"] for v in views]
        assert all(state in JobState.TERMINAL for state in states)
        counts = queue.counts()
        assert counts["queued"] == 0 and counts["running"] == 0
        assert (
            counts["done"] + counts["failed"] + counts["cancelled"] == 10
        )
        assert counts["failed"] == 2
        assert counts["cancelled"] >= len(cancelled_ids)
        assert tm.counter_value("serve.jobs_submitted") == 10
        assert (
            tm.counter_value("serve.jobs_completed")
            + tm.counter_value("serve.jobs_failed")
            + tm.counter_value("serve.jobs_cancelled")
        ) == 10


def test_stop_cancels_queued_work_and_rejects_new(make_queue):
    work = _StubWork()
    queue = make_queue(work, workers=1, capacity=16)
    blocker = queue.submit(_spec(seed=1))
    _wait_state(queue, blocker["id"], JobState.RUNNING)
    queued = queue.submit(_spec(seed=2))
    work.release.set()
    queue.stop(timeout=5.0)
    with pytest.raises(RuntimeError):
        queue.submit(_spec(seed=3))
    # stop() left no job in a non-terminal state (restart to inspect
    # is impossible; the views were finalized before the loop closed).
    assert queued is not None


# -- HTTP endpoint (stubbed work) --------------------------------------------


def _fake_execute(spec, cancel=None, cache=None, sim_engine="vectorized"):
    if spec.seed == 666:
        raise RuntimeError("engine exploded")
    if spec.seed == 99 and cancel is not None:
        cancel.wait(timeout=10.0)
        raise JobCancelled()
    return {"app": spec.app, "kind": spec.kind, "seed": spec.seed,
            "engine": sim_engine}


@pytest.fixture
def daemon(monkeypatch):
    import repro.serve.server as server_mod

    monkeypatch.setattr(server_mod, "execute_job", _fake_execute)
    active = ServeDaemon(port=0, workers=2, capacity=4)
    active.start()
    yield active
    active.stop()


def test_http_submit_returns_202_and_result_on_completion(daemon):
    client = ServeClient(daemon.port)
    request = urllib.request.Request(
        f"http://127.0.0.1:{daemon.port}/v1/jobs",
        data=json.dumps({"kind": "profile", "app": APP, "seed": 5}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        assert response.status == 202
        view = json.loads(response.read().decode())
    assert view["state"] in (JobState.QUEUED, JobState.RUNNING)
    done = client.wait(view["id"], timeout=10.0)
    assert done["state"] == JobState.DONE
    assert done["result"]["seed"] == 5
    listing = client.jobs()
    assert view["id"] in [j["id"] for j in listing["jobs"]]
    assert listing["counts"]["done"] >= 1


def test_http_malformed_specs_are_400(daemon):
    client = ServeClient(daemon.port)
    for bad in (
        {"kind": "nope", "app": APP},
        {"kind": "profile", "app": APP, "bogus": 1},
        {"app": APP},
    ):
        with pytest.raises(ServeError) as err:
            client._request("POST", "/v1/jobs", bad)
        assert err.value.status == 400
    # Empty and non-JSON bodies too.
    for raw in (b"", b"{nope"):
        request = urllib.request.Request(
            f"http://127.0.0.1:{daemon.port}/v1/jobs",
            data=raw, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as http_err:
            urllib.request.urlopen(request, timeout=5)
        assert http_err.value.code == 400


def test_http_unknown_job_and_path_are_404(daemon):
    client = ServeClient(daemon.port)
    for call in (
        lambda: client.job("j999999"),
        lambda: client.cancel("j999999"),
        lambda: client.job_events("j999999"),
        lambda: client._request("GET", "/v1/nope"),
        lambda: client._request("POST", "/v1/nope"),
        lambda: client._request("DELETE", "/v1/nope"),
    ):
        with pytest.raises(ServeError) as err:
            call()
        assert err.value.status == 404


def test_http_failed_job_carries_error(daemon):
    client = ServeClient(daemon.port)
    view = client.run("profile", APP, seed=666, timeout=10.0)
    assert view["state"] == JobState.FAILED
    assert "engine exploded" in view["error"]


def test_http_cancel_running_job_via_delete(daemon):
    client = ServeClient(daemon.port)
    view = client.submit("profile", APP, seed=99)
    deadline = time.monotonic() + 5.0
    while client.job(view["id"])["state"] != JobState.RUNNING:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    client._request("DELETE", f"/v1/jobs/{view['id']}")
    final = client.wait(view["id"], timeout=10.0)
    assert final["state"] == JobState.CANCELLED


def test_http_backpressure_429_with_retry_after(monkeypatch):
    import repro.serve.server as server_mod

    gate = threading.Event()

    def blocking_execute(spec, cancel=None, cache=None,
                         sim_engine="vectorized"):
        gate.wait(timeout=10.0)
        return {"seed": spec.seed}

    monkeypatch.setattr(server_mod, "execute_job", blocking_execute)
    active = ServeDaemon(port=0, workers=1, capacity=1)
    active.start()
    try:
        client = ServeClient(active.port)
        first = client.submit("profile", APP, seed=1)
        deadline = time.monotonic() + 5.0
        while client.job(first["id"])["state"] != JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.submit("profile", APP, seed=2)  # fills the queue
        with pytest.raises(QueueFullError):
            client.submit("profile", APP, seed=3)
        # The raw response advertises Retry-After.
        request = urllib.request.Request(
            f"http://127.0.0.1:{active.port}/v1/jobs",
            data=json.dumps({"kind": "profile", "app": APP}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 429
        assert err.value.headers["Retry-After"] is not None
        # A polite client rides the backpressure out.
        gate.set()
        view = client.submit_with_retry("profile", APP, seed=4,
                                        backoff_seconds=0.02)
        assert client.wait(view["id"], timeout=10.0)["state"] == JobState.DONE
    finally:
        gate.set()
        active.stop()


def test_submit_with_retry_sleeps_the_advertised_retry_after(monkeypatch):
    """Against a stubbed server, the 429 Retry-After hint must take
    precedence over the client's own backoff schedule."""
    import http.server

    import repro.serve.client as client_mod

    class _Stub(http.server.BaseHTTPRequestHandler):
        attempts = 0

        def do_POST(self):
            self.rfile.read(int(self.headers.get("Content-Length", 0)))
            _Stub.attempts += 1
            if _Stub.attempts <= 2:
                body = json.dumps({"error": "queue full"}).encode()
                self.send_response(429)
                self.send_header("Retry-After", "7")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            body = json.dumps({"id": "j-1", "state": "queued"}).encode()
            self.send_response(202)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _Stub)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    slept = []
    monkeypatch.setattr(client_mod.time, "sleep", slept.append)
    try:
        client = ServeClient(server.server_address[1])
        view = client.submit_with_retry(
            "profile", APP, backoff_seconds=0.25
        )
    finally:
        server.shutdown()
        thread.join(timeout=5)
    assert view["id"] == "j-1"
    # Both 429s carried Retry-After: 7 -- never the 0.25s backoff.
    assert slept == [7.0, 7.0]


def test_submit_with_retry_backs_off_without_a_hint(monkeypatch):
    import repro.serve.client as client_mod

    calls = {"n": 0}

    def flaky_submit(kind, app, **spec):
        calls["n"] += 1
        if calls["n"] == 1:
            raise QueueFullError(429, "full", retry_after=None)
        return {"id": "j-2", "state": "queued"}

    slept = []
    monkeypatch.setattr(client_mod.time, "sleep", slept.append)
    client = ServeClient(1)
    monkeypatch.setattr(client, "submit", flaky_submit)
    view = client.submit_with_retry("profile", APP, backoff_seconds=0.5)
    assert view["id"] == "j-2"
    assert slept == [0.5]


def test_http_job_events_stream(monkeypatch):
    import repro.serve.server as server_mod

    monkeypatch.setattr(server_mod, "execute_job", _fake_execute)
    with obs_events.session():
        active = ServeDaemon(port=0, workers=1, capacity=4)
        active.start()
        try:
            client = ServeClient(active.port)
            view = client.run("select", APP, seed=2, timeout=10.0)
            names = [e["name"] for e in client.job_events(view["id"])]
        finally:
            active.stop()
    assert names[0] == "serve.job.queued"
    assert "serve.job.started" in names
    assert names[-1] == "serve.job.completed"


# -- LiveHub integration: /health, /metrics, gtpin top -----------------------


def test_serve_section_flows_to_health_metrics_and_top(monkeypatch, tmp_path):
    import repro.serve.server as server_mod
    from repro.parallel.cache import ProfileCache

    monkeypatch.setattr(server_mod, "execute_job", _fake_execute)
    with telemetry.session():
        hub = live.enable()
        try:
            hub.set_command("gtpin serve")
            active = ServeDaemon(
                port=0, workers=2, capacity=8,
                cache=ProfileCache(tmp_path / "profiles"),
            )
            active.start()
            try:
                client = ServeClient(active.port)
                client.run("profile", APP, timeout=10.0)

                health = client.health()
                serve = health["serve"]
                assert serve["workers"] == 2
                assert serve["capacity"] == 8
                assert serve["jobs"]["done"] == 1
                assert serve["cache"]["entries"] == 0
                assert 0.0 <= serve["cache"]["hit_rate"] <= 1.0

                parsed = parse_exposition(client.metrics_text())
                assert parsed[metric_name("serve.workers")] == 2.0
                assert parsed[metric_name("serve.queue_capacity")] == 8.0
                assert parsed[metric_name("serve.queue_depth")] == 0.0
                assert (
                    metric_name("serve.profile_cache_hit_rate") in parsed
                )

                frame = render_top(health)
                assert "serve" in frame
                assert "running 0/2" in frame
                assert "done 1" in frame
                assert "cap 8" in frame
            finally:
                active.stop()
        finally:
            live.disable()


def test_hub_section_errors_never_break_health(monkeypatch):
    hub = live.enable()
    try:
        hub.add_section(
            "broken",
            health=lambda: 1 / 0,
            metrics=lambda: 1 / 0,
        )
        doc = hub.health_doc()
        assert "error" in doc["broken"]
        assert "repro_" in hub.metrics_text()  # metrics still render
    finally:
        live.disable()


# -- CLI surface -------------------------------------------------------------


def test_cli_rejects_negative_jobs(capsys):
    assert main(["select", APP, "--jobs", "-3"]) == 2
    err = capsys.readouterr().err
    assert "jobs must be >= 0" in err
    assert "Traceback" not in err


def test_cli_rejects_garbage_jobs_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "abc")
    assert main(["suite"]) == 2
    err = capsys.readouterr().err
    assert "REPRO_JOBS" in err
    assert "Traceback" not in err


def _occupied_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    return sock, sock.getsockname()[1]


def test_cli_serve_port_in_use_is_one_line_error(capsys):
    sock, port = _occupied_port()
    try:
        assert main(["serve", "--port", str(port), "--duration", "0"]) == 2
    finally:
        sock.close()
    err = capsys.readouterr().err
    assert "address already in use" in err
    assert "Traceback" not in err


def test_cli_live_port_in_use_is_one_line_error(capsys):
    sock, port = _occupied_port()
    try:
        assert main(
            ["select", APP, "--scale", "0.1", "--live-port", str(port)]
        ) == 2
    finally:
        sock.close()
    err = capsys.readouterr().err
    assert "--live-port" in err
    assert "address already in use" in err
    assert "Traceback" not in err


def test_cli_serve_smoke_with_duration(capsys):
    assert main(["serve", "--port", "0", "--duration", "0"]) == 0
    out = capsys.readouterr().out
    assert "listening on http://127.0.0.1:" in out
    assert "gtpin top --port" in out
    assert "done (0 done, 0 failed, 0 cancelled)" in out


# -- acceptance: concurrent clients, faults, zero lost jobs ------------------

FAULT_SPEC = "seed=7;event.lost=0.3;trace.truncate=0.3"


def _client_workload(port: int, name: str, specs) -> list[dict]:
    client = ServeClient(port)
    views = []
    for kind, app in specs:
        view = client.submit_with_retry(
            kind, app, scale=0.05, client=name, backoff_seconds=0.05
        )
        views.append(view)
    return [client.wait(v["id"], timeout=180.0) for v in views]


@pytest.mark.slow
def test_four_concurrent_clients_zero_lost_jobs_under_faults(tmp_path):
    """The issue's acceptance workload: four concurrent clients push a
    mixed profile/select mini-suite through one daemon while a fault
    plan is active; every job must land in a terminal state (zero lost
    jobs) and the cache hit-rate series must be on /metrics."""
    from repro import faults
    from repro.faults import FaultPlan
    from repro.parallel.cache import ProfileCache

    workloads = {
        "alice": [("profile", "cb-gaussian-buffer"),
                  ("select", "cb-gaussian-buffer")],
        "bob": [("profile", "cb-gaussian-image"),
                ("select", "cb-gaussian-image")],
        "carol": [("select", "cb-gaussian-buffer"),
                  ("profile", "cb-gaussian-image")],
        "dave": [("profile", "cb-gaussian-buffer"),
                 ("profile", "cb-gaussian-image")],
    }
    with telemetry.session(), obs_events.session():
        hub = live.enable()
        try:
            daemon = ServeDaemon(
                port=0, workers=2, capacity=4,
                cache=ProfileCache(tmp_path / "profiles"),
            )
            daemon.start()
            results: dict[str, list] = {}
            errors: list[BaseException] = []

            def drive(name: str) -> None:
                try:
                    results[name] = _client_workload(
                        daemon.port, name, workloads[name]
                    )
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            try:
                with faults.session(FaultPlan.parse(FAULT_SPEC)):
                    threads = [
                        threading.Thread(target=drive, args=(name,))
                        for name in workloads
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=300.0)
                assert not errors, errors
                assert set(results) == set(workloads)

                # Zero lost jobs: every submission is terminal, none
                # stuck, and the daemon agrees with the clients.
                all_views = [v for views in results.values() for v in views]
                assert len(all_views) == 8
                for view in all_views:
                    assert view["state"] in JobState.TERMINAL, view
                assert all(
                    view["state"] == JobState.DONE for view in all_views
                ), [v.get("error") for v in all_views]
                counts = daemon.queue.counts()
                assert counts["queued"] == 0 and counts["running"] == 0
                assert counts["done"] == 8

                # The serve + cache series made it onto /metrics.
                client = ServeClient(daemon.port)
                parsed = parse_exposition(client.metrics_text())
                assert (
                    metric_name("serve.profile_cache_hit_rate") in parsed
                )
                stats = client.cache_stats()
                assert stats["hit_rate"] >= 0.0
                health = client.health()
                assert health["serve"]["jobs"]["done"] == 8
            finally:
                daemon.stop()
        finally:
            live.disable()
