"""Figure 8 validation primitives: cross-trial / frequency / architecture."""

import pytest

from repro.gpu.device import FIGURE_8_FREQUENCIES_MHZ, HD4000, HD4600
from repro.sampling.pipeline import select_simpoints
from repro.sampling.simpoint import SimPointOptions
from repro.sampling.validation import (
    cross_architecture_errors,
    cross_frequency_errors,
    cross_trial_errors,
)

FAST_OPTIONS = SimPointOptions(max_k=6, restarts=1, max_iterations=40)


@pytest.fixture(scope="module")
def selection(small_workload):
    return select_simpoints(small_workload, options=FAST_OPTIONS).selection


def test_cross_trial(small_workload, selection):
    report = cross_trial_errors(
        small_workload.recording, selection, HD4000, trial_seeds=[11, 12, 13]
    )
    assert len(report.points) == 3
    for point in report.points:
        assert point.error_percent >= 0
    # Trial-to-trial noise is small: selections keep predicting well.
    assert report.mean_error_percent < 15


def test_cross_trial_conditions_labelled(small_workload, selection):
    report = cross_trial_errors(
        small_workload.recording, selection, HD4000, trial_seeds=[21]
    )
    assert report.points[0].condition == "trial seed 21"
    assert report.selection_label == selection.config.label


def test_cross_frequency(small_workload, selection):
    report = cross_frequency_errors(
        small_workload.recording, selection, HD4000,
        frequencies_mhz=FIGURE_8_FREQUENCIES_MHZ[:3],
    )
    assert [p.condition for p in report.points] == [
        "1000MHz", "850MHz", "700MHz",
    ]
    assert report.max_error_percent < 25


def test_cross_architecture(small_workload, selection):
    report = cross_architecture_errors(
        small_workload.recording, selection, HD4600
    )
    assert len(report.points) == 1
    assert report.points[0].condition == HD4600.name
    assert report.points[0].error_percent < 25


def test_fraction_below(small_workload, selection):
    report = cross_trial_errors(
        small_workload.recording, selection, HD4000,
        trial_seeds=list(range(30, 36)),
    )
    assert 0.0 <= report.fraction_below(3.0) <= 1.0
    assert report.fraction_below(1e9) == 1.0
