"""Whole-system integration: the paper's workflow, end to end."""

import pytest

from repro.analysis.characterize import characterize_app
from repro.gpu.device import HD4000, HD4600
from repro.sampling import (
    FeatureKind,
    IntervalScheme,
    explore_application,
    profile_workload,
)
from repro.sampling.simpoint import SimPointOptions
from repro.sampling.validation import (
    cross_architecture_errors,
    cross_frequency_errors,
    cross_trial_errors,
)
from repro.workloads import load_app

FAST_OPTIONS = SimPointOptions(max_k=8, restarts=1, max_iterations=50)


@pytest.fixture(scope="module")
def app():
    return load_app("cb-gaussian-buffer", scale=1.0)


@pytest.fixture(scope="module")
def workload(app):
    return profile_workload(app, trial_seed=0)


@pytest.fixture(scope="module")
def exploration(workload):
    return explore_application(workload, options=FAST_OPTIONS)


def test_characterization_consistent_with_profile(app, workload):
    char = characterize_app(app, trial_seed=0)
    assert (
        char.instructions.dynamic_instructions
        == workload.log.total_instructions
    )
    assert char.instructions.kernel_invocations == len(workload.log.invocations)


def test_exploration_produces_usable_selection(exploration):
    best = exploration.minimize_error()
    assert best.error_percent < 10.0
    assert best.selection.k <= 10
    assert best.simulation_speedup > 1.0


def test_best_config_beats_median(exploration):
    errors = sorted(r.error_percent for r in exploration.results.values())
    best = exploration.minimize_error().error_percent
    median = errors[len(errors) // 2]
    assert best <= median


def test_figure8_style_validation(workload, exploration):
    selection = exploration.minimize_error().selection
    trials = cross_trial_errors(
        workload.recording, selection, HD4000, trial_seeds=[101, 102, 103]
    )
    freqs = cross_frequency_errors(
        workload.recording, selection, HD4000, frequencies_mhz=(850.0, 350.0)
    )
    arch = cross_architecture_errors(workload.recording, selection, HD4600)
    # The paper's qualitative claim: selections transfer; most errors
    # stay single-digit.
    assert trials.mean_error_percent < 10
    assert freqs.mean_error_percent < 15
    assert arch.points[0].error_percent < 15


def test_selection_metadata_traceable(exploration, workload):
    """Selected intervals map back to real invocations of real kernels."""
    best = exploration.minimize_error()
    for chosen in best.selection.selected:
        for i in chosen.interval.invocation_indices():
            profile = workload.log.invocations[i]
            assert profile.kernel_name in workload.log.binaries


def test_sync_scheme_never_splits_epochs(workload, exploration):
    for config, result in exploration.results.items():
        if config.scheme is not IntervalScheme.SYNC:
            continue
        for chosen in result.selection.selected:
            epochs = {
                workload.log.invocations[i].sync_epoch
                for i in chosen.interval.invocation_indices()
            }
            assert len(epochs) == 1


def test_kernel_based_and_block_based_both_work(exploration):
    from repro.sampling.selection import SelectionConfig

    kn = exploration[SelectionConfig(IntervalScheme.SYNC, FeatureKind.KN)]
    bb = exploration[SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB)]
    assert kn.error_percent >= 0 and bb.error_percent >= 0
