"""Whole-system integration: the paper's workflow, end to end.

The gaussian_* session fixtures in conftest.py supply the application,
profiled workload, and 30-config exploration shared with other
end-to-end test modules.
"""

from repro.analysis.characterize import characterize_app
from repro.gpu.device import HD4000, HD4600
from repro.sampling import FeatureKind, IntervalScheme
from repro.sampling.validation import (
    cross_architecture_errors,
    cross_frequency_errors,
    cross_trial_errors,
)


def test_characterization_consistent_with_profile(
    gaussian_app, gaussian_workload
):
    char = characterize_app(gaussian_app, trial_seed=0)
    assert (
        char.instructions.dynamic_instructions
        == gaussian_workload.log.total_instructions
    )
    assert char.instructions.kernel_invocations == len(
        gaussian_workload.log.invocations
    )


def test_exploration_produces_usable_selection(gaussian_exploration):
    best = gaussian_exploration.minimize_error()
    assert best.error_percent < 10.0
    assert best.selection.k <= 10
    assert best.simulation_speedup > 1.0


def test_best_config_beats_median(gaussian_exploration):
    errors = sorted(
        r.error_percent for r in gaussian_exploration.results.values()
    )
    best = gaussian_exploration.minimize_error().error_percent
    median = errors[len(errors) // 2]
    assert best <= median


def test_figure8_style_validation(gaussian_workload, gaussian_exploration):
    selection = gaussian_exploration.minimize_error().selection
    trials = cross_trial_errors(
        gaussian_workload.recording, selection, HD4000,
        trial_seeds=[101, 102, 103],
    )
    freqs = cross_frequency_errors(
        gaussian_workload.recording, selection, HD4000,
        frequencies_mhz=(850.0, 350.0),
    )
    arch = cross_architecture_errors(
        gaussian_workload.recording, selection, HD4600
    )
    # The paper's qualitative claim: selections transfer; most errors
    # stay single-digit.
    assert trials.mean_error_percent < 10
    assert freqs.mean_error_percent < 15
    assert arch.points[0].error_percent < 15


def test_selection_metadata_traceable(gaussian_exploration, gaussian_workload):
    """Selected intervals map back to real invocations of real kernels."""
    best = gaussian_exploration.minimize_error()
    for chosen in best.selection.selected:
        for i in chosen.interval.invocation_indices():
            profile = gaussian_workload.log.invocations[i]
            assert profile.kernel_name in gaussian_workload.log.binaries


def test_sync_scheme_never_splits_epochs(
    gaussian_workload, gaussian_exploration
):
    for config, result in gaussian_exploration.results.items():
        if config.scheme is not IntervalScheme.SYNC:
            continue
        for chosen in result.selection.selected:
            epochs = {
                gaussian_workload.log.invocations[i].sync_epoch
                for i in chosen.interval.invocation_indices()
            }
            assert len(epochs) == 1


def test_kernel_based_and_block_based_both_work(gaussian_exploration):
    from repro.sampling.selection import SelectionConfig

    kn = gaussian_exploration[
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.KN)
    ]
    bb = gaussian_exploration[
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB)
    ]
    assert kn.error_percent >= 0 and bb.error_percent >= 0
