"""HostProgram: the replayable call stream."""

import pytest

from repro.opencl.api import KERNEL_ENQUEUE, APICall, CallCategory
from repro.opencl.host_program import HostProgram


def _program():
    return HostProgram(
        name="p",
        calls=(
            APICall("clCreateContext"),
            APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 8}),
            APICall("clFinish"),
            APICall(KERNEL_ENQUEUE, {"kernel": "k", "global_work_size": 8}),
        ),
    )


def test_name_required():
    with pytest.raises(ValueError, match="name"):
        HostProgram(name="", calls=())


def test_len_and_iteration():
    program = _program()
    assert len(program) == 4
    assert [c.name for c in program][0] == "clCreateContext"


def test_category_counts():
    counts = _program().category_counts()
    assert counts[CallCategory.KERNEL] == 2
    assert counts[CallCategory.SYNCHRONIZATION] == 1
    assert counts[CallCategory.OTHER] == 1


def test_convenience_counts():
    program = _program()
    assert program.kernel_enqueue_count == 2
    assert program.synchronization_count == 1


def test_programs_are_immutable():
    program = _program()
    with pytest.raises(AttributeError):
        program.name = "other"  # type: ignore[misc]
