"""Shared fixtures: small kernels, small applications, profiled workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.driver.jit import KernelSource
from repro.isa.builder import KernelBuilder
from repro.isa.kernel import KernelBinary
from repro.isa.program import TripCount
from repro.opencl.api import KERNEL_ENQUEUE, APICall
from repro.opencl.host_program import HostProgram
from repro.sampling.explorer import ExplorationResult, explore
from repro.sampling.pipeline import (
    ProfiledWorkload,
    explore_application,
    profile_workload,
)
from repro.sampling.simpoint import SimPointOptions
from repro.workloads import load_app
from repro.workloads.generator import SyntheticApplication, generate_application
from repro.workloads.spec import AppSpec

#: Cheap SimPoint settings shared by the end-to-end tests; accurate
#: enough for the suite's qualitative assertions, much faster than the
#: defaults.
FAST_OPTIONS = SimPointOptions(max_k=8, restarts=1, max_iterations=50)

#: The deterministic mini-suite the golden-file and fault-storm tests
#: sweep: small scale, mixed buffer/image pipelines, fixed order.
MINI_SUITE = ("cb-gaussian-buffer", "cb-gaussian-image", "cb-histogram-buffer")
MINI_SUITE_SCALE = 0.2


def build_tiny_kernel(
    name: str = "tiny",
    simd_width: int = 16,
    loop_trips: int = 4,
) -> KernelBinary:
    """A 3-block kernel: prologue, loop body with load/store, epilogue."""
    kb = KernelBuilder(name, simd_width=simd_width, arg_names=("iters", "n"))
    with kb.block("prologue") as b:
        b.mov(exec_size=1)
        b.mov()
        b.alu("add", exec_size=1)
    with kb.loop(TripCount(base=0, arg="iters", scale=1.0)):
        with kb.block("body") as b:
            b.load(bytes_per_channel=4)
            b.alu("add")
            b.alu("mul")
            b.store(bytes_per_channel=4)
    with kb.block("epilogue") as b:
        b.store(bytes_per_channel=4)
        b.control("ret")
    return kb.build()


@pytest.fixture
def tiny_kernel() -> KernelBinary:
    return build_tiny_kernel()


def make_host_program(
    kernel_names: list[str],
    enqueues: list[tuple[str, int, float]],
    program_name: str = "test-program",
    sync_every: int = 3,
) -> HostProgram:
    """A hand-built host program: setup, alternating enqueues, syncs."""
    calls: list[APICall] = [
        APICall("clGetPlatformIDs"),
        APICall("clCreateContext"),
        APICall("clCreateCommandQueue"),
        APICall("clCreateProgramWithSource", {"program": program_name}),
        APICall("clBuildProgram", {"program": program_name}),
    ]
    for name in kernel_names:
        calls.append(APICall("clCreateKernel", {"kernel": name}))
    for i, (kernel, gws, iters) in enumerate(enqueues):
        calls.append(
            APICall(
                "clSetKernelArg",
                {"kernel": kernel, "arg_index": 0, "value": iters},
            )
        )
        calls.append(
            APICall(
                "clSetKernelArg",
                {"kernel": kernel, "arg_index": 1, "value": float(gws)},
            )
        )
        calls.append(
            APICall(KERNEL_ENQUEUE, {"kernel": kernel, "global_work_size": gws})
        )
        if (i + 1) % sync_every == 0:
            calls.append(APICall("clFinish"))
    calls.append(APICall("clFinish"))
    return HostProgram(name=program_name, calls=tuple(calls))


class TinyApplication:
    """Minimal hand-rolled Application (satisfies the gtpin protocol)."""

    def __init__(
        self,
        kernels: list[KernelBinary],
        enqueues: list[tuple[str, int, float]],
        name: str = "tiny-app",
        sync_every: int = 3,
    ) -> None:
        self.name = name
        self.sources = {
            k.name: KernelSource(name=k.name, body=k) for k in kernels
        }
        self.host_program = make_host_program(
            [k.name for k in kernels], enqueues, name, sync_every
        )


@pytest.fixture
def tiny_app() -> TinyApplication:
    k1 = build_tiny_kernel("tiny.k0")
    k2 = build_tiny_kernel("tiny.k1", simd_width=8)
    enqueues = [
        ("tiny.k0", 256, 4.0),
        ("tiny.k1", 512, 2.0),
        ("tiny.k0", 256, 4.0),
        ("tiny.k1", 128, 6.0),
        ("tiny.k0", 1024, 3.0),
        ("tiny.k1", 512, 2.0),
    ]
    return TinyApplication([k1, k2], enqueues)


SMALL_SPEC = AppSpec(
    name="test-small-app",
    suite="test",
    domain="test",
    n_kernels=4,
    body_blocks_range=(3, 6),
    n_invocations=120,
    global_work_sizes=(512, 1024),
    iters_range=(2, 6),
    enqueues_per_sync=4.0,
    other_calls_per_enqueue=2.0,
    n_phases=3,
)


@pytest.fixture(scope="session")
def small_app() -> SyntheticApplication:
    return generate_application(SMALL_SPEC, seed=7)


@pytest.fixture(scope="session")
def small_workload(small_app) -> ProfiledWorkload:
    """A profiled workload shared across sampling tests (read-only)."""
    return profile_workload(small_app, trial_seed=3)


@pytest.fixture(scope="session")
def small_exploration(small_workload) -> ExplorationResult:
    """All 30 configs scored over the small synthetic workload."""
    return explore(
        small_workload.application_name,
        small_workload.log,
        small_workload.timings,
        approx_size=200_000,
        options=SimPointOptions(max_k=6, restarts=1, max_iterations=40),
    )


@pytest.fixture(scope="session")
def gaussian_app():
    """The suite's cb-gaussian-buffer application at full scale."""
    return load_app("cb-gaussian-buffer", scale=1.0)


@pytest.fixture(scope="session")
def gaussian_workload(gaussian_app) -> ProfiledWorkload:
    return profile_workload(gaussian_app, trial_seed=0)


@pytest.fixture(scope="session")
def gaussian_exploration(gaussian_workload) -> ExplorationResult:
    return explore_application(gaussian_workload, options=FAST_OPTIONS)


@pytest.fixture(scope="session")
def mini_suite():
    """Three small suite applications, loaded once per session."""
    return tuple(
        load_app(name, scale=MINI_SUITE_SCALE) for name in MINI_SUITE
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
