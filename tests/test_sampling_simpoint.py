"""SimPoint: projection, weighted k-means, BIC model selection."""

import numpy as np
import pytest

from repro.sampling.simpoint import (
    SimPointOptions,
    SimPointResult,
    bic_score,
    project_features,
    run_simpoint,
    weighted_kmeans,
)


def _two_phase_vectors(n_per_phase=30):
    """Two clearly separated behaviours plus tiny per-interval noise."""
    rng = np.random.default_rng(0)
    vectors = []
    for i in range(n_per_phase):
        vectors.append({("bb", "a", 0): 100.0 + rng.normal(0, 1),
                        ("bb", "a", 1): 10.0})
    for i in range(n_per_phase):
        vectors.append({("bb", "b", 0): 80.0 + rng.normal(0, 1),
                        ("bb", "b", 1): 40.0})
    weights = [1000] * (2 * n_per_phase)
    return vectors, weights


def test_projection_shape_and_determinism():
    vectors, _ = _two_phase_vectors()
    a = project_features(vectors, dim=15, seed=3)
    b = project_features(vectors, dim=15, seed=3)
    assert a.shape == (60, 15)
    np.testing.assert_array_equal(a, b)


def test_projection_seed_changes_embedding():
    vectors, _ = _two_phase_vectors()
    a = project_features(vectors, dim=15, seed=3)
    b = project_features(vectors, dim=15, seed=4)
    assert not np.allclose(a, b)


def test_projection_normalizes_frequencies():
    """Scaling a vector by a constant does not move its projection."""
    base = [{("x",): 1.0, ("y",): 3.0}]
    scaled = [{("x",): 10.0, ("y",): 30.0}]
    a = project_features(base, dim=8, seed=0)
    b = project_features(scaled, dim=8, seed=0)
    np.testing.assert_allclose(a, b)


def test_identical_vectors_project_identically():
    vectors = [{("k",): 5.0}, {("k",): 5.0}]
    points = project_features(vectors, dim=4, seed=0)
    np.testing.assert_array_equal(points[0], points[1])


def test_kmeans_separates_obvious_clusters():
    vectors, weights = _two_phase_vectors()
    points = project_features(vectors, dim=15, seed=0)
    labels, centroids, distortion = weighted_kmeans(
        points, np.asarray(weights, float), 2, SimPointOptions()
    )
    first = set(labels[:30].tolist())
    second = set(labels[30:].tolist())
    assert len(first) == 1 and len(second) == 1
    assert first != second
    # Distortion is weighted; normalize by total mass.
    assert distortion / float(np.sum(weights)) < 0.01


def test_kmeans_respects_weights():
    """A heavily weighted point pulls its centroid toward itself."""
    points = np.array([[0.0], [1.0], [10.0]])
    weights = np.array([1.0, 1.0, 1000.0])
    labels, centroids, _ = weighted_kmeans(
        points, weights, 2, SimPointOptions(restarts=5)
    )
    # The heavy point sits (almost) exactly on its centroid.
    heavy_centroid = centroids[labels[2]]
    assert abs(heavy_centroid[0] - 10.0) < 0.5


def test_run_simpoint_separates_two_phases():
    """SimPoint may sub-cluster within-phase noise (k >= 2, up to max),
    but no cluster may ever mix the two phases."""
    vectors, weights = _two_phase_vectors()
    result = run_simpoint(vectors, weights, SimPointOptions(max_k=10))
    assert 2 <= result.k <= 10
    assert len(result.representatives) == result.k
    assert sum(result.representation_ratios) == pytest.approx(1.0)
    phase_a_labels = set(result.labels[:30].tolist())
    phase_b_labels = set(result.labels[30:].tolist())
    assert not (phase_a_labels & phase_b_labels)
    # Representatives cover both phases.
    reps = sorted(result.representatives)
    assert reps[0] < 30 and reps[-1] >= 30


def test_ratios_proportional_to_weight():
    vectors, _ = _two_phase_vectors()
    # Phase A carries 3x the instruction weight of phase B.
    weights = [3000] * 30 + [1000] * 30
    result = run_simpoint(vectors, weights)
    # Sum the ratios of clusters whose representatives sit in phase A:
    # they must carry 75% of the total weight regardless of sub-clustering.
    phase_a_ratio = sum(
        ratio
        for rep, ratio in zip(
            result.representatives, result.representation_ratios
        )
        if rep < 30
    )
    assert phase_a_ratio == pytest.approx(0.75, abs=0.01)


def test_single_interval_program():
    result = run_simpoint([{("k",): 1.0}], [100])
    assert result.k == 1
    assert result.representatives == (0,)
    assert result.representation_ratios == (1.0,)


def test_max_k_respected():
    vectors, weights = _two_phase_vectors()
    result = run_simpoint(vectors, weights, SimPointOptions(max_k=1))
    assert result.k == 1


def test_may_return_fewer_than_max_k():
    """SimPoint may return fewer clusters than the max (Section V-B)."""
    vectors = [{("same",): 1.0} for _ in range(40)]
    result = run_simpoint(vectors, [10] * 40, SimPointOptions(max_k=10))
    assert result.k < 10


def test_determinism():
    vectors, weights = _two_phase_vectors()
    a = run_simpoint(vectors, weights)
    b = run_simpoint(vectors, weights)
    assert a.representatives == b.representatives
    assert a.representation_ratios == b.representation_ratios


def test_input_validation():
    with pytest.raises(ValueError, match="no intervals"):
        run_simpoint([], [])
    with pytest.raises(ValueError, match="does not match"):
        run_simpoint([{("k",): 1.0}], [1, 2])
    with pytest.raises(ValueError, match="positive"):
        run_simpoint([{("k",): 1.0}], [0])


def test_options_validation():
    with pytest.raises(ValueError):
        SimPointOptions(max_k=0)
    with pytest.raises(ValueError):
        SimPointOptions(projection_dim=0)
    with pytest.raises(ValueError):
        SimPointOptions(bic_coverage=1.5)
    with pytest.raises(ValueError):
        SimPointOptions(restarts=0)


def test_bic_prefers_true_k():
    vectors, weights = _two_phase_vectors()
    result = run_simpoint(vectors, weights)
    # BIC at k=2 beats k=1 for clearly bimodal data.
    assert result.bic_by_k[2] > result.bic_by_k[1]


def test_labels_cover_all_intervals():
    vectors, weights = _two_phase_vectors()
    result = run_simpoint(vectors, weights)
    assert result.labels.shape == (60,)
    assert set(result.labels.tolist()) == set(range(result.k))


def test_empty_cluster_reseeds_on_current_distances():
    """Regression: reseeding an empty cluster used the distance matrix
    computed *before* this iteration's centroid updates.  With stale
    distances the farthest point can be one an updated centroid already
    sits on, wasting the cluster; distances must be recomputed against
    the updated centroids (excluding the vacated one)."""
    from repro.sampling.simpoint import _lloyd

    points = np.array([[0.0], [10.0], [21.0]])
    weights = np.array([1.0, 1.0, 1.0])
    # Initial centroids capture points 0+10 in cluster 0 and 21 in
    # cluster 1, leaving cluster 2 empty; after the update c0=5, c1=21.
    centroids = np.array([[9.0], [11.0], [100.0]])
    labels, centroids, _ = _lloyd(points, weights, centroids, 1)
    # Stale distances would reseed on point 21 (old min-distance 100)
    # even though the updated c1 sits exactly on it; the true farthest
    # point under the updated centroids is point 0 (distance 5 from c0).
    assert labels.tolist() == [2, 0, 1]
    assert centroids[2, 0] == 0.0
    assert centroids[0, 0] == pytest.approx(5.0)
    assert centroids[1, 0] == pytest.approx(21.0)


def test_reseeded_clusters_are_never_empty():
    """Every requested cluster ends up non-empty even when initial
    centroids collapse onto the same region."""
    rng = np.random.default_rng(0)
    points = np.concatenate(
        [rng.normal(0, 0.1, (20, 2)), rng.normal(5, 0.1, (20, 2))]
    )
    weights = np.ones(40)
    centroids = points[:3].copy()  # all three seeds in the first blob
    from repro.sampling.simpoint import _lloyd

    labels, centroids, _ = _lloyd(points, weights, centroids, 40)
    assert set(labels.tolist()) == {0, 1, 2}


def test_result_validation():
    with pytest.raises(ValueError, match="one representative"):
        SimPointResult(
            k=2,
            labels=np.zeros(3, dtype=np.int64),
            representatives=(0,),
            representation_ratios=(1.0,),
            bic_by_k={},
            projected=np.zeros((3, 2)),
        )
    with pytest.raises(ValueError, match="sum to 1"):
        SimPointResult(
            k=1,
            labels=np.zeros(3, dtype=np.int64),
            representatives=(0,),
            representation_ratios=(0.4,),
            bic_by_k={},
            projected=np.zeros((3, 2)),
        )


def _project_reference(vectors, dim, seed):
    """The original scalar projection loop, kept as the equivalence
    oracle for the vectorized ``project_features``."""
    keys = {}
    for vector in vectors:
        for key in vector:
            if key not in keys:
                keys[key] = len(keys)
    rng = np.random.default_rng(seed)
    directions = rng.uniform(-1.0, 1.0, size=(max(1, len(keys)), dim))
    projected = np.zeros((len(vectors), dim), dtype=np.float64)
    for i, vector in enumerate(vectors):
        total = sum(vector.values())
        if total <= 0:
            continue
        for key, value in vector.items():
            projected[i] += (value / total) * directions[keys[key]]
    return projected


def test_projection_matches_scalar_reference():
    """Vectorized projection is bit-identical to the scalar loop."""
    vectors, _ = _two_phase_vectors()
    # Add shared keys across phases and a many-key vector so the key
    # table and the scatter-add see interleaved first-appearances.
    rng = np.random.default_rng(5)
    vectors.append(
        {("bb", "a", j): float(rng.integers(1, 500)) for j in range(40)}
    )
    vectors.append({("bb", "b", 0): 7.0, ("bb", "a", 3): 2.0})
    for dim, seed in [(15, 493575226), (8, 0), (1, 99)]:
        got = project_features(vectors, dim, seed)
        want = _project_reference(vectors, dim, seed)
        np.testing.assert_array_equal(got, want)  # exact, not allclose


def test_projection_zero_total_vector():
    """An all-zero vector projects to the origin without dividing by 0."""
    vectors = [{("x",): 0.0}, {("x",): 5.0, ("y",): 5.0}]
    got = project_features(vectors, dim=4, seed=1)
    want = _project_reference(vectors, dim=4, seed=1)
    np.testing.assert_array_equal(got, want)
    assert (got[0] == 0.0).all()


def test_projection_empty_vectors():
    got = project_features([{}, {}], dim=3, seed=0)
    assert got.shape == (2, 3)
    assert (got == 0.0).all()
