"""Kernel binaries: validation, arrays, rewriting support."""

import numpy as np
import pytest

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction, MemoryDirection, SendMessage
from repro.isa.kernel import KernelArrays, KernelBinary
from repro.isa.opcodes import FIGURE_4A_ORDER, OpClass, Opcode
from repro.isa.program import Block, Seq

from conftest import build_tiny_kernel


def _simple_blocks(n=3):
    return [
        BasicBlock(i, [Instruction(Opcode.ADD, exec_size=8)]) for i in range(n)
    ]


def test_kernel_requires_name():
    with pytest.raises(ValueError, match="name"):
        KernelBinary("", _simple_blocks(), Seq((Block(0),)))


def test_kernel_requires_blocks():
    with pytest.raises(ValueError, match="no basic blocks"):
        KernelBinary("k", [], Seq((Block(0),)))


def test_block_ids_must_be_contiguous():
    blocks = [
        BasicBlock(0, [Instruction(Opcode.ADD)]),
        BasicBlock(2, [Instruction(Opcode.ADD)]),
    ]
    with pytest.raises(ValueError, match="contiguous"):
        KernelBinary("k", blocks, Seq((Block(0),)))


def test_program_must_reference_known_blocks():
    with pytest.raises(ValueError, match="unknown blocks"):
        KernelBinary("k", _simple_blocks(2), Seq((Block(5),)))


def test_invalid_simd_width():
    with pytest.raises(ValueError, match="simd_width"):
        KernelBinary("k", _simple_blocks(), Seq((Block(0),)), simd_width=5)


def test_static_instruction_count(tiny_kernel):
    manual = sum(len(b) for b in tiny_kernel.blocks)
    assert tiny_kernel.static_instruction_count == manual


def test_arrays_match_block_summaries(tiny_kernel):
    arrays = tiny_kernel.arrays
    for block in tiny_kernel:
        i = block.block_id
        s = block.summary
        assert arrays.instruction_counts[i] == s.instruction_count
        assert arrays.bytes_read[i] == s.bytes_read
        assert arrays.bytes_written[i] == s.bytes_written
        assert arrays.issue_cycles[i] == pytest.approx(s.issue_cycles)
        for c, cls in enumerate(FIGURE_4A_ORDER):
            assert arrays.class_counts[i, c] == s.class_counts[cls]


def test_arrays_cached(tiny_kernel):
    assert tiny_kernel.arrays is tiny_kernel.arrays


def test_arrays_dot_product_equals_sum(tiny_kernel):
    counts = np.ones(tiny_kernel.n_blocks, dtype=np.int64)
    assert (
        counts @ tiny_kernel.arrays.instruction_counts
        == tiny_kernel.static_instruction_count
    )


def test_static_class_counts(tiny_kernel):
    counts = tiny_kernel.static_class_counts()
    assert sum(counts.values()) == tiny_kernel.static_instruction_count
    assert counts[OpClass.SEND] >= 2  # loop load/store + epilogue store


def test_with_blocks_preserves_signature(tiny_kernel):
    rewritten = tiny_kernel.with_blocks(tiny_kernel.blocks, {"marker": 1})
    assert rewritten.name == tiny_kernel.name
    assert rewritten.arg_names == tiny_kernel.arg_names
    assert rewritten.simd_width == tiny_kernel.simd_width
    assert rewritten.metadata["marker"] == 1
    # Fresh arrays cache, equal content.
    assert (
        rewritten.static_instruction_count
        == tiny_kernel.static_instruction_count
    )


def test_with_blocks_merges_metadata():
    kernel = build_tiny_kernel()
    first = kernel.with_blocks(kernel.blocks, {"a": 1})
    second = first.with_blocks(first.blocks, {"b": 2})
    assert second.metadata["a"] == 1
    assert second.metadata["b"] == 2


def test_disassemble_mentions_all_blocks(tiny_kernel):
    text = tiny_kernel.disassemble()
    for block in tiny_kernel:
        assert block.label + ":" in text


def test_kernel_arrays_of_matches_manual(tiny_kernel):
    arrays = KernelArrays.of(tiny_kernel.blocks)
    np.testing.assert_array_equal(
        arrays.instruction_counts, tiny_kernel.arrays.instruction_counts
    )


def test_encoded_bytes_positive(tiny_kernel):
    assert tiny_kernel.static_encoded_bytes > 0
