"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cache import CacheConfig, CacheSimulator
from repro.gpu.memory import Surface, expand_addresses
from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import (
    EXEC_SIZES,
    AccessPattern,
    Instruction,
    MemoryDirection,
    SendMessage,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import (
    Block,
    Branch,
    Loop,
    Seq,
    TripCount,
    execution_counts,
)
from repro.sampling.simpoint import SimPointOptions, project_features, run_simpoint

# -- strategies ---------------------------------------------------------------

exec_sizes = st.sampled_from(EXEC_SIZES)
opcodes = st.sampled_from([op for op in Opcode if not op.is_send])
patterns = st.sampled_from(list(AccessPattern))
directions = st.sampled_from(list(MemoryDirection))


@st.composite
def instructions(draw):
    if draw(st.booleans()):
        return Instruction(
            Opcode.SEND,
            exec_size=draw(exec_sizes),
            send=SendMessage(
                direction=draw(directions),
                bytes_per_channel=draw(st.integers(1, 64)),
                pattern=draw(patterns),
                stride=draw(st.integers(1, 8)),
            ),
        )
    return Instruction(
        draw(opcodes),
        exec_size=draw(exec_sizes),
        compact=draw(st.booleans()),
    )


@st.composite
def basic_blocks(draw):
    instrs = draw(st.lists(instructions(), min_size=1, max_size=12))
    return BasicBlock(0, instrs)


# -- block summary invariants ----------------------------------------------------


@given(basic_blocks())
@settings(max_examples=60, deadline=None)
def test_summary_class_counts_total(block):
    s = block.summary
    assert sum(s.class_counts.values()) == s.instruction_count
    assert sum(s.width_counts.values()) == s.instruction_count


@given(basic_blocks())
@settings(max_examples=60, deadline=None)
def test_summary_bytes_nonnegative_and_match_manual(block):
    s = block.summary
    assert s.bytes_read == sum(i.bytes_read for i in block)
    assert s.bytes_written == sum(i.bytes_written for i in block)
    assert s.issue_cycles > 0


@given(basic_blocks())
@settings(max_examples=40, deadline=None)
def test_summary_encoding_bounds(block):
    s = block.summary
    assert 8 * s.instruction_count <= s.encoded_bytes <= 16 * s.instruction_count


# -- program tree invariants -------------------------------------------------------


@st.composite
def program_trees(draw, max_blocks=6):
    n_blocks = draw(st.integers(1, max_blocks))
    leaves = [Block(i) for i in range(n_blocks)]

    def node(depth):
        kind = draw(st.integers(0, 3 if depth < 2 else 0))
        if kind == 0:
            return leaves[draw(st.integers(0, n_blocks - 1))]
        if kind == 1:
            return Seq(tuple(node(depth + 1) for _ in range(draw(st.integers(1, 3)))))
        if kind == 2:
            return Loop(node(depth + 1), TripCount(draw(st.integers(0, 5))))
        return Branch(
            node(depth + 1), node(depth + 1),
            draw(st.floats(0.0, 1.0)),
        )

    return Seq(tuple(node(0) for _ in range(draw(st.integers(1, 3))))), n_blocks


@given(program_trees(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_execution_counts_nonnegative_and_deterministic(tree_and_n, seed):
    tree, n_blocks = tree_and_n
    a = execution_counts(tree, {}, np.random.default_rng(seed), n_blocks)
    b = execution_counts(tree, {}, np.random.default_rng(seed), n_blocks)
    assert (a >= 0).all()
    assert a.tolist() == b.tolist()


@given(st.integers(0, 100), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_nested_loops_multiply(outer, inner):
    tree = Loop(Loop(Block(0), TripCount(inner)), TripCount(outer))
    counts = execution_counts(tree, {}, np.random.default_rng(0), 1)
    assert counts[0] == outer * inner


# -- address streams -------------------------------------------------------------


@given(
    patterns,
    exec_sizes,
    st.integers(0, 50),
    st.integers(1, 64),
)
@settings(max_examples=60, deadline=None)
def test_addresses_stay_in_surface(pattern, exec_size, n_exec, bpc):
    surface = Surface(base_address=4096, size_bytes=1 << 16)
    msg = SendMessage(
        MemoryDirection.READ, bytes_per_channel=bpc, pattern=pattern
    )
    addrs = expand_addresses(
        msg, exec_size, n_exec, surface, rng=np.random.default_rng(0)
    )
    if n_exec == 0:
        assert addrs.size == 0
    else:
        assert (addrs >= surface.base_address).all()
        assert (addrs < surface.base_address + surface.size_bytes).all()


# -- cache invariants -----------------------------------------------------------------


@given(
    st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_cache_accounting_invariants(addresses, is_write):
    sim = CacheSimulator(CacheConfig(size_bytes=4096, line_bytes=64, ways=2))
    batch = sim.access(np.array(addresses, dtype=np.int64), is_write)
    assert batch.hits + batch.misses == batch.accesses == len(addresses)
    assert batch.evictions <= batch.misses
    assert batch.writebacks <= batch.evictions


@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
@settings(max_examples=30, deadline=None)
def test_cache_repeat_pass_hits_when_fitting(addresses):
    """A footprint smaller than the cache fully hits on the second pass."""
    sim = CacheSimulator(CacheConfig(size_bytes=1 << 15, line_bytes=64, ways=8))
    arr = np.array(addresses, dtype=np.int64)
    sim.access(arr, is_write=False)
    second = sim.access(arr, is_write=False)
    assert second.hits == second.accesses


@given(
    st.lists(st.integers(0, 1 << 18), min_size=1, max_size=120),
    st.lists(st.booleans(), min_size=120, max_size=120),
    st.sampled_from([(1024, 64, 2), (4096, 64, 4), (3 * 1024, 64, 4)]),
)
@settings(max_examples=30, deadline=None)
def test_cache_stream_matches_reference_walk(addresses, writes, geometry):
    """The vectorized stream engine equals the per-access oracle walk."""
    size, line, ways = geometry
    config = CacheConfig(size_bytes=size, line_bytes=line, ways=ways)
    arr = np.array(addresses, dtype=np.int64)
    w = np.array(writes[: arr.size], dtype=bool)
    vec = CacheSimulator(config)
    ref = CacheSimulator(config)
    outcome = vec.access_stream(arr, w)
    for i in range(arr.size):
        batch = ref.access_reference(arr[i:i + 1], is_write=bool(w[i]))
        assert (batch.hits == 1) == bool(outcome.hit[i])
    assert vec.stats == ref.stats
    assert vec.canonical_state().signature() == ref.canonical_state().signature()


# -- SimPoint invariants -------------------------------------------------------------


@st.composite
def feature_sets(draw):
    n = draw(st.integers(1, 25))
    n_keys = draw(st.integers(1, 6))
    vectors = []
    for _ in range(n):
        vector = {}
        for k in range(n_keys):
            if draw(st.booleans()):
                vector[("k", k)] = draw(
                    st.floats(0.1, 1000, allow_nan=False)
                )
        if not vector:
            vector[("k", 0)] = 1.0
        vectors.append(vector)
    weights = [draw(st.integers(1, 10_000)) for _ in range(n)]
    return vectors, weights


@given(feature_sets())
@settings(max_examples=25, deadline=None)
def test_simpoint_invariants(data):
    vectors, weights = data
    result = run_simpoint(
        vectors, weights, SimPointOptions(max_k=5, restarts=1, max_iterations=20)
    )
    assert 1 <= result.k <= min(5, len(vectors))
    assert len(set(result.representatives)) == result.k
    assert sum(result.representation_ratios) == 1.0 or abs(
        sum(result.representation_ratios) - 1.0
    ) < 1e-9
    assert all(0 < r <= 1 for r in result.representation_ratios)
    assert result.labels.shape == (len(vectors),)
    assert set(result.labels.tolist()) == set(range(result.k))
    # Every representative belongs to the cluster it represents.
    for j, rep in enumerate(result.representatives):
        assert result.labels[rep] == j


@given(feature_sets(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_projection_scale_invariance(data, seed):
    vectors, _ = data
    scaled = [{k: 7.5 * v for k, v in vec.items()} for vec in vectors]
    a = project_features(vectors, dim=8, seed=seed)
    b = project_features(scaled, dim=8, seed=seed)
    np.testing.assert_allclose(a, b, atol=1e-9)
