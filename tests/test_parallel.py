"""The parallel execution engine: pool, cache, and telemetry merge."""

from __future__ import annotations

import os
import pickle

import pytest

from repro import telemetry
from repro.gpu.device import HD4000
from repro.parallel import (
    CACHE_ENV,
    JOBS_ENV,
    ProfileCache,
    TaskOutcome,
    parallel_map,
    resolve_jobs,
)
from repro.parallel.pool import WORKER_ENV
from repro.sampling.explorer import (
    ALL_CONFIGS,
    ExplorationError,
    explore,
)
from repro.sampling.pipeline import explore_application, profile_workload
from repro.sampling.simpoint import SimPointOptions
from repro.telemetry.snapshot import capture_snapshot, merge_snapshot

FAST_OPTIONS = SimPointOptions(max_k=4, restarts=1, max_iterations=30)

#: Every 5th config: both interval schemes and feature families appear,
#: but the serial-vs-parallel comparison stays fast.
SUBSET = ALL_CONFIGS[::5]


# -- module-level task functions (workers pickle them by reference) ----------


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"poisoned input {x}")
    return x + 100


def _always_fail(x):
    raise RuntimeError("nope")


def _traced_task(x):
    tm = telemetry.get()
    with tm.span("worker.task", category="test", x=x):
        tm.inc("worker.tasks")
        tm.observe("worker.value", float(x))
    return x


# -- resolve_jobs ------------------------------------------------------------


def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    monkeypatch.delenv(WORKER_ENV, raising=False)
    assert resolve_jobs() == 1


def test_resolve_jobs_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_reads_environment(monkeypatch):
    monkeypatch.delenv(WORKER_ENV, raising=False)
    monkeypatch.setenv(JOBS_ENV, "5")
    assert resolve_jobs() == 5


def test_resolve_jobs_zero_means_all_cores(monkeypatch):
    monkeypatch.delenv(WORKER_ENV, raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv(JOBS_ENV, "0")
    assert resolve_jobs() == (os.cpu_count() or 1)


def test_resolve_jobs_inside_worker_is_serial(monkeypatch):
    monkeypatch.setenv(WORKER_ENV, "1")
    monkeypatch.setenv(JOBS_ENV, "8")
    assert resolve_jobs() == 1
    assert resolve_jobs(8) == 1


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.delenv(WORKER_ENV, raising=False)
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ValueError, match=JOBS_ENV):
        resolve_jobs()


# -- parallel_map ------------------------------------------------------------


def test_parallel_map_preserves_task_order():
    tasks = [(i,) for i in range(20)]
    serial = parallel_map(_square, tasks, jobs=1)
    pooled = parallel_map(_square, tasks, jobs=2)
    assert [o.value for o in serial] == [i * i for i in range(20)]
    assert [o.value for o in pooled] == [i * i for i in range(20)]
    assert [o.index for o in pooled] == list(range(20))
    assert all(o.ok for o in pooled)


def test_parallel_map_isolates_failures():
    tasks = [(i,) for i in range(6)]
    outcomes = parallel_map(_fail_on_three, tasks, jobs=2)
    bad = outcomes[3]
    assert not bad.ok
    assert "ValueError" in bad.error and "poisoned input 3" in bad.error
    assert bad.traceback and "poisoned input 3" in bad.traceback
    good = [o for o in outcomes if o.ok]
    assert [o.value for o in good] == [100, 101, 102, 104, 105]


def test_parallel_map_serial_failures_match_pool_shape():
    outcomes = parallel_map(_fail_on_three, [(3,), (4,)], jobs=1)
    assert not outcomes[0].ok and outcomes[1].value == 104
    assert isinstance(outcomes[0], TaskOutcome)


def test_parallel_map_empty_input():
    assert parallel_map(_square, [], jobs=4) == []


def test_parallel_map_counts_tasks_and_failures():
    with telemetry.session() as tm:
        parallel_map(_fail_on_three, [(i,) for i in range(4)], jobs=2)
        assert tm.counter_value("parallel.tasks") == 4
        assert tm.counter_value("parallel.task_failures") == 1


# -- explore: serial/parallel identity and error capture ---------------------


def test_explore_parallel_matches_serial(small_workload):
    kwargs = dict(
        configs=SUBSET, approx_size=200_000, options=FAST_OPTIONS
    )
    serial = explore(
        small_workload.application_name,
        small_workload.log,
        small_workload.timings,
        jobs=1,
        **kwargs,
    )
    parallel = explore(
        small_workload.application_name,
        small_workload.log,
        small_workload.timings,
        jobs=2,
        **kwargs,
    )
    assert not serial.errors and not parallel.errors
    assert list(serial.results) == list(parallel.results) == list(SUBSET)
    assert serial.results == parallel.results


def test_explore_application_jobs_passthrough(small_workload):
    result = explore_application(
        small_workload, options=FAST_OPTIONS, configs=SUBSET, jobs=2
    )
    assert set(result.results) == set(SUBSET)
    assert not result.errors


def test_explore_captures_per_config_errors(small_workload, monkeypatch):
    poisoned = SUBSET[1]

    def sometimes(config, *args, **kwargs):
        if config == poisoned:
            raise RuntimeError("synthetic failure")
        return real(config, *args, **kwargs)

    import repro.sampling.explorer as explorer_mod

    real = explorer_mod.evaluate_config
    monkeypatch.setattr(explorer_mod, "evaluate_config", sometimes)
    result = explore(
        small_workload.application_name,
        small_workload.log,
        small_workload.timings,
        configs=SUBSET,
        approx_size=200_000,
        options=FAST_OPTIONS,
        jobs=1,
    )
    assert poisoned not in result.results
    assert "synthetic failure" in result.errors[poisoned]
    assert set(result.results) == set(SUBSET) - {poisoned}


def test_explore_raises_when_every_config_fails(small_workload, monkeypatch):
    import repro.sampling.explorer as explorer_mod

    def boom(*args, **kwargs):
        raise RuntimeError("total loss")

    monkeypatch.setattr(explorer_mod, "evaluate_config", boom)
    with pytest.raises(ExplorationError, match="every configuration failed"):
        explore(
            small_workload.application_name,
            small_workload.log,
            small_workload.timings,
            configs=SUBSET,
            jobs=1,
        )


# -- profile cache -----------------------------------------------------------


def _assert_same_workload(a, b):
    assert a.application_name == b.application_name
    assert a.trial_seed == b.trial_seed
    assert a.device == b.device
    assert len(a.log.invocations) == len(b.log.invocations)
    assert a.log.total_instructions == b.log.total_instructions
    assert a.timings.program_name == b.timings.program_name


def test_profile_cache_roundtrip(small_app, tmp_path):
    cache = ProfileCache(tmp_path)
    with telemetry.session() as tm:
        first = profile_workload(small_app, HD4000, 3, None, cache)
        assert tm.counter_value("sampling.profile_cache.misses") == 1
        assert tm.counter_value("sampling.profile_cache.stores") == 1
        assert len(cache) == 1
        second = profile_workload(small_app, HD4000, 3, None, cache)
        assert tm.counter_value("sampling.profile_cache.hits") == 1
        # The cache must not have re-profiled.
        assert tm.counter_value("pipeline.workloads_profiled") == 1
    _assert_same_workload(first, second)


def test_profile_cache_key_depends_on_seed_and_device(small_app, tmp_path):
    cache = ProfileCache(tmp_path)
    base = cache.key(small_app, HD4000, 3, None)
    assert cache.key(small_app, HD4000, 4, None) != base
    assert base == cache.key(small_app, HD4000, 3, None)


def test_profile_cache_corrupt_entry_is_a_miss(small_app, tmp_path):
    cache = ProfileCache(tmp_path)
    profile_workload(small_app, HD4000, 3, None, cache)
    key = cache.key(small_app, HD4000, 3, None)
    cache.path_for(key).write_bytes(b"not a pickle")
    with telemetry.session() as tm:
        again = profile_workload(small_app, HD4000, 3, None, cache)
        assert tm.counter_value("sampling.profile_cache.misses") == 1
        assert tm.counter_value("sampling.profile_cache.hits") == 0
    assert again.application_name == small_app.name
    # The corrupt entry was dropped and rewritten.
    with open(cache.path_for(key), "rb") as stream:
        assert pickle.load(stream).application_name == small_app.name


def test_profile_cache_clear(small_app, tmp_path):
    cache = ProfileCache(tmp_path)
    profile_workload(small_app, HD4000, 3, None, cache)
    assert cache.clear() == 1
    assert len(cache) == 0


def test_profile_cache_from_env(monkeypatch, tmp_path):
    monkeypatch.delenv(CACHE_ENV, raising=False)
    assert ProfileCache.from_env() is None
    monkeypatch.setenv(CACHE_ENV, "0")
    assert ProfileCache.from_env() is None
    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "profiles"))
    cache = ProfileCache.from_env()
    assert cache is not None and cache.root == tmp_path / "profiles"
    monkeypatch.setenv(CACHE_ENV, "1")
    cache = ProfileCache.from_env()
    assert cache is not None and cache.root.name == "profiles"


# -- telemetry capture + merge ----------------------------------------------


def test_worker_telemetry_merges_into_parent():
    with telemetry.session() as tm:
        with tm.span("driver", category="test"):
            parallel_map(_traced_task, [(i,) for i in range(4)], jobs=2)
        assert tm.counter_value("worker.tasks") == 4
        gauge = tm.counters.gauge("worker.value")
        assert gauge.count == 4
        assert gauge.minimum == 0.0 and gauge.maximum == 3.0
        spans = tm.spans()
        names = [s.name for s in spans]
        assert names.count("worker.task") == 4
        # Merged ids resolve within the combined registry, and worker
        # spans sit on synthetic (negative) threads.
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans)
        fanout = next(s for s in spans if s.name == "parallel.map")
        for span in spans:
            if span.name == "worker.task":
                assert span.thread_id < 0
                assert span.parent_id == fanout.span_id
                assert span.end_ns >= span.start_ns
            if span.parent_id is not None:
                assert span.parent_id in by_id


def test_explore_parallel_telemetry_is_complete(small_workload):
    with telemetry.session() as tm:
        explore(
            small_workload.application_name,
            small_workload.log,
            small_workload.timings,
            configs=SUBSET,
            approx_size=200_000,
            options=FAST_OPTIONS,
            jobs=2,
        )
        # Every config evaluation is visible in the parent registry even
        # though the work ran in worker processes.
        assert tm.counter_value("sampling.configs_evaluated") == len(SUBSET)
        config_spans = [
            s for s in tm.spans() if s.name == "select.config"
        ]
        assert len(config_spans) == len(SUBSET)
        labels = {s.args.get("config") for s in config_spans}
        assert labels == {c.label for c in SUBSET}


def test_merge_snapshot_roundtrip_without_pool():
    """merge_snapshot alone: ids remapped, times shifted, totals added."""
    with telemetry.session() as worker_tm:
        with worker_tm.span("outer", category="test"):
            with worker_tm.span("inner", category="test"):
                worker_tm.inc("some.counter", 2)
                worker_tm.observe("some.gauge", 5.0)
        snapshot = capture_snapshot(worker_tm)
    assert len(snapshot) == 2

    with telemetry.session() as tm:
        with tm.span("parent", category="test"):
            parent_id = tm.current_span_id()
            merge_snapshot(tm, snapshot, parent_id)
        spans = {s.name: s for s in tm.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id == parent_id
        assert spans["outer"].span_id != spans["parent"].span_id
        assert tm.counter_value("some.counter") == 2
        assert tm.counters.gauge("some.gauge").count == 1


def test_merge_snapshot_into_disabled_registry_is_noop():
    with telemetry.session() as worker_tm:
        with worker_tm.span("outer", category="test"):
            pass
        snapshot = capture_snapshot(worker_tm)
    merge_snapshot(telemetry.get(), snapshot)  # disabled -> no-op, no raise
    assert telemetry.get().spans() == []
