"""Structured program trees: trip counts, branches, execution counts."""

import numpy as np
import pytest

from repro.isa.program import (
    Block,
    Branch,
    Loop,
    Seq,
    TripCount,
    block_ids,
    execution_counts,
    seq,
    straight_line,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_trip_count_constant():
    assert TripCount(base=5).resolve({}, _rng()) == 5


def test_trip_count_arg_scaled():
    trip = TripCount(base=2, arg="iters", scale=3.0)
    assert trip.resolve({"iters": 4}, _rng()) == 14


def test_trip_count_missing_arg_uses_base():
    trip = TripCount(base=2, arg="iters", scale=3.0)
    assert trip.resolve({}, _rng()) == 2


def test_trip_count_jitter_bounds():
    trip = TripCount(base=10, jitter=2)
    values = {trip.resolve({}, _rng(s)) for s in range(50)}
    assert values <= {8, 9, 10, 11, 12}
    assert len(values) > 1  # jitter actually varies


def test_trip_count_never_negative():
    trip = TripCount(base=0, jitter=3)
    for s in range(20):
        assert trip.resolve({}, _rng(s)) >= 0


def test_trip_count_validation():
    with pytest.raises(ValueError):
        TripCount(base=-1)
    with pytest.raises(ValueError):
        TripCount(jitter=-1)


def test_branch_probability_validation():
    with pytest.raises(ValueError):
        Branch(Block(0), None, 1.5)


def test_block_ids_collects_all():
    program = Seq(
        (
            Block(0),
            Loop(Seq((Block(1), Branch(Block(2), Block(3), 0.5))), TripCount(2)),
            Block(4),
        )
    )
    assert block_ids(program) == frozenset({0, 1, 2, 3, 4})


def test_execution_counts_straight_line():
    program = straight_line([0, 1, 2])
    counts = execution_counts(program, {}, _rng(), 3)
    assert counts.tolist() == [1, 1, 1]


def test_execution_counts_loop_multiplies():
    program = Seq((Block(0), Loop(Block(1), TripCount(7)), Block(2)))
    counts = execution_counts(program, {}, _rng(), 3)
    assert counts.tolist() == [1, 7, 1]


def test_execution_counts_nested_loops():
    inner = Loop(Block(1), TripCount(3))
    program = Seq((Block(0), Loop(inner, TripCount(4))))
    counts = execution_counts(program, {}, _rng(), 2)
    assert counts.tolist() == [1, 12]


def test_execution_counts_branch_split():
    program = Loop(Branch(Block(0), Block(1), 0.25), TripCount(100))
    counts = execution_counts(program, {}, _rng(), 2)
    assert counts[0] == 25
    assert counts[1] == 75


def test_execution_counts_branch_without_else():
    program = Loop(Branch(Block(0), None, 0.5), TripCount(10))
    counts = execution_counts(program, {}, _rng(), 1)
    assert counts[0] == 5


def test_execution_counts_zero_trip_loop():
    program = Seq((Block(0), Loop(Block(1), TripCount(0))))
    counts = execution_counts(program, {}, _rng(), 2)
    assert counts.tolist() == [1, 0]


def test_execution_counts_arg_dependent():
    program = Loop(Block(0), TripCount(base=0, arg="n", scale=2.0))
    counts = execution_counts(program, {"n": 6}, _rng(), 1)
    assert counts[0] == 12


def test_seq_flattens_nested_sequences():
    inner = seq(Block(0), Block(1))
    outer = seq(inner, Block(2))
    assert len(outer.children) == 3


def test_jittered_counts_vary_across_seeds():
    program = Loop(Block(0), TripCount(base=10, jitter=3))
    values = {
        int(execution_counts(program, {}, _rng(s), 1)[0]) for s in range(30)
    }
    assert len(values) > 1


def test_same_seed_reproduces_counts():
    program = Loop(Block(0), TripCount(base=10, jitter=3))
    a = execution_counts(program, {}, _rng(42), 1)
    b = execution_counts(program, {}, _rng(42), 1)
    assert a.tolist() == b.tolist()
