"""Trace propagation and the run ledger: context, ids, ledger, CLI, e2e.

The observability contract under test: one serve job yields *one*
trace whose spans cross four execution domains (client process, daemon
queue, worker subprocess, simulation engine), and every run leaves a
durable record in the SQLite ledger that survives a daemon restart.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import telemetry
from repro.cli import main
from repro.obs.ledger import (
    DEFAULT_LEDGER_NAME,
    RunLedger,
    RunRecord,
    render_diff,
    render_run,
    render_runs_table,
    resolve_ledger_path,
)
from repro.telemetry import context as trace_context
from repro.telemetry.registry import Telemetry
from repro.telemetry.spans import SpanRecord

# -- W3C traceparent context -------------------------------------------------


def test_traceparent_roundtrip_preserves_ids():
    trace_id = trace_context.new_trace_id()
    header = trace_context.format_traceparent(trace_id, 0xDEAD_BEEF)
    ctx = trace_context.parse_traceparent(header)
    assert ctx is not None
    assert ctx.trace_id == trace_id
    assert ctx.parent_span_id == 0xDEAD_BEEF


def test_traceparent_zero_parent_means_no_parent():
    trace_id = trace_context.new_trace_id()
    header = trace_context.format_traceparent(trace_id, None)
    assert header.endswith("-0000000000000000-01")
    ctx = trace_context.parse_traceparent(header)
    assert ctx is not None
    assert ctx.parent_span_id is None


@pytest.mark.parametrize(
    "header",
    [
        "",
        "garbage",
        "00-zz-11-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "a" * 31 + "-" + "1" * 16 + "-01",  # short trace id
        "00-" + "a" * 32 + "-" + "1" * 15 + "-01",  # short parent
    ],
)
def test_traceparent_rejects_malformed(header):
    assert trace_context.parse_traceparent(header) is None


def test_traceparent_parse_is_case_insensitive():
    header = "00-" + "AB" * 16 + "-" + "0F" * 8 + "-01"
    ctx = trace_context.parse_traceparent(header)
    assert ctx is not None
    assert ctx.trace_id == "ab" * 16


def test_activate_nests_and_restores():
    assert trace_context.current() is None
    outer = trace_context.TraceContext(trace_context.new_trace_id(), 1)
    inner = trace_context.TraceContext(trace_context.new_trace_id(), 2)
    with trace_context.activate(outer):
        assert trace_context.current() is outer
        with trace_context.activate(None):  # no-op passthrough
            assert trace_context.current() is outer
        with trace_context.activate(inner):
            assert trace_context.current() is inner
        assert trace_context.current() is outer
    assert trace_context.current() is None


def test_root_spans_join_the_active_context():
    with telemetry.session() as tm:
        ctx = trace_context.TraceContext(
            trace_context.new_trace_id(), parent_span_id=424242
        )
        with trace_context.activate(ctx):
            with tm.span("outer") as outer:
                assert outer.trace_id == ctx.trace_id
                with tm.span("inner") as nested:
                    # Nested spans inherit from their parent span, not
                    # the thread context.
                    assert nested.trace_id == ctx.trace_id
        records = {s.name: s for s in tm.spans()}
    assert records["outer"].parent_id == 424242
    assert records["outer"].trace_id == ctx.trace_id
    assert records["inner"].parent_id == records["outer"].span_id


# -- span-id namespaces: cross-process merge without remapping ---------------


def test_span_ids_share_a_random_high_word_per_collector():
    tm = Telemetry()
    first = tm.allocate_span_id()
    ids = [first] + [tm.allocate_span_id() for _ in range(10)]
    assert all(b - a == 1 for a, b in zip(ids, ids[1:]))
    assert first >> 32, "high word must be a nonzero random base"
    assert all(i < 2**63 for i in ids), "ids must stay signed-int64 safe"


def test_span_id_namespaces_are_disjoint_across_registries():
    # Each collector draws a random 31-bit base; five fresh registries
    # colliding is a ~1e-8 event, so disjointness is effectively law.
    bases = {Telemetry().allocate_span_id() >> 32 for _ in range(5)}
    assert len(bases) == 5


def test_cross_registry_parent_edges_survive_without_remapping():
    # A "worker" registry records spans under a parent id handed over
    # from the "main" registry; because ids are globally unique, the
    # edge is stored verbatim and the assembled trace parents cleanly.
    main_tm = Telemetry()
    with main_tm.span("serve.job") as job:
        handoff = trace_context.TraceContext(job.trace_id, job.span_id)
    worker_tm = Telemetry()
    with trace_context.activate(handoff):
        with worker_tm.span("worker.task"):
            pass
    (worker_span,) = worker_tm.spans()
    (job_span,) = main_tm.spans()
    assert worker_span.parent_id == job_span.span_id
    assert worker_span.trace_id == job_span.trace_id
    combined = [job_span, worker_span]
    tree = telemetry.trace_tree_summary(combined, job_span.trace_id)
    assert "serve.job" in tree and "worker.task" in tree
    # worker.task must render indented under serve.job, not as a root.
    job_line = next(l for l in tree.splitlines() if "serve.job" in l)
    task_line = next(l for l in tree.splitlines() if "worker.task" in l)
    indent = lambda l: len(l) - len(l.lstrip())  # noqa: E731
    assert indent(task_line) > indent(job_line)


# -- the run ledger ----------------------------------------------------------


def _record(command="profile", **overrides):
    base = dict(
        command=command,
        trace_id=trace_context.new_trace_id(),
        app="cb-gaussian-buffer",
        kind="profile",
        device="HD4000",
        engine="vectorized",
        status="ok",
        started_unix=1_700_000_000.0,
        duration_seconds=1.5,
        health_flags=(),
        counters={"gtpin.records": 100.0},
        quantiles={"serve.job_seconds": {"p50": 1.0, "p99": 2.0}},
    )
    base.update(overrides)
    return RunRecord(**base)


def test_ledger_records_and_reads_back(tmp_path):
    ledger = RunLedger(tmp_path / "runs.sqlite")
    rid = ledger.record_run(_record())
    assert rid == 1
    record = ledger.run(rid)
    assert record.command == "profile"
    assert record.counters == {"gtpin.records": 100.0}
    assert record.quantiles["serve.job_seconds"]["p99"] == 2.0
    metrics = record.metrics()
    assert metrics["serve.job_seconds/p99"] == 2.0
    assert metrics["duration_seconds"] == 1.5
    with pytest.raises(KeyError):
        ledger.run(999)


def test_ledger_runs_are_newest_first(tmp_path):
    ledger = RunLedger(tmp_path / "runs.sqlite")
    for seconds in (1.0, 2.0, 3.0):
        ledger.record_run(_record(duration_seconds=seconds))
    listed = ledger.runs(limit=2)
    assert [r.duration_seconds for r in listed] == [3.0, 2.0]
    pair = ledger.latest_pair(command="profile")
    assert pair is not None
    older, newer = pair
    assert (older.duration_seconds, newer.duration_seconds) == (2.0, 3.0)
    assert ledger.latest_pair(command="serve") is None


def test_ledger_survives_reopen_like_a_daemon_restart(tmp_path):
    path = tmp_path / "runs.sqlite"
    first = RunLedger(path)
    a = first.record_run(_record(duration_seconds=1.0))
    del first
    # A daemon restart constructs a brand-new RunLedger on the same
    # file; prior runs must be visible and diffable against new ones.
    reopened = RunLedger(path)
    assert [r.id for r in reopened.runs()] == [a]
    b = reopened.record_run(
        _record(duration_seconds=3.0, health_flags=("event.lost",))
    )
    diff = reopened.diff(a, b)
    assert diff["health_changed"]
    deltas = {name: delta for name, _, _, delta, _ in diff["deltas"]}
    assert deltas["duration_seconds"] == 2.0


def test_ledger_diff_reports_ratio_and_one_sided_metrics(tmp_path):
    ledger = RunLedger(tmp_path / "runs.sqlite")
    a = ledger.record_run(_record(counters={"zeroed": 0.0, "shared": 2.0}))
    b = ledger.record_run(_record(counters={"shared": 4.0, "fresh": 1.0}))
    diff = ledger.diff(a, b)
    by_name = {name: (va, vb, delta, ratio)
               for name, va, vb, delta, ratio in diff["deltas"]}
    assert by_name["shared"] == (2.0, 4.0, 2.0, 2.0)
    assert diff["only_a"] == ["zeroed"]
    assert diff["only_b"] == ["fresh"]
    rendered = render_diff(diff)
    assert "shared: 2 -> 4" in rendered
    assert "(x2.000)" in rendered
    assert "only in b: fresh" in rendered


def test_ledger_render_helpers(tmp_path):
    assert "ledger is empty" in render_runs_table([])
    ledger = RunLedger(tmp_path / "runs.sqlite")
    rid = ledger.record_run(_record())
    record = ledger.run(rid)
    table = render_runs_table([record])
    assert "profile" in table and record.trace_id[:16] in table
    shown = render_run(record)
    assert record.trace_id in shown
    assert "gtpin.records = 100" in shown
    same = ledger.diff(rid, rid)
    assert "no metric changed" in render_diff(same)


def test_ledger_span_roundtrip_assembles_the_tree(tmp_path):
    ledger = RunLedger(tmp_path / "runs.sqlite")
    trace_id = trace_context.new_trace_id()
    spans = [
        SpanRecord(
            span_id=10, parent_id=None, name="serve.client.submit",
            category="serve", start_ns=1_000_000, end_ns=9_000_000,
            thread_id=1, depth=0, args={}, trace_id=trace_id,
        ),
        SpanRecord(
            span_id=11, parent_id=10, name="serve.queue.job",
            category="serve", start_ns=2_000_000, end_ns=8_000_000,
            thread_id=1, depth=1, args={"job": "j-1"}, trace_id=trace_id,
        ),
        SpanRecord(
            span_id=12, parent_id=11, name="simulation.epoch_counts.task",
            category="simulation", start_ns=3_000_000, end_ns=4_000_000,
            thread_id=-7, depth=0, args={}, trace_id=trace_id,
        ),
    ]
    # Identity clock mapping: pretend perf_ns already is unix ns.
    assert ledger.record_spans(trace_id, spans, lambda ns: ns / 1e9) == 3
    back = ledger.trace(trace_id)
    assert [s.name for s in back] == [
        "serve.client.submit", "serve.queue.job",
        "simulation.epoch_counts.task",
    ]
    assert back[1].parent_id == 10
    assert back[2].thread_id == -7
    assert back[1].args == {"job": "j-1"}
    tree = telemetry.trace_tree_summary(back, trace_id)
    assert "1 worker lanes" in tree
    chrome = telemetry.trace_chrome_trace(back, trace_id)
    names = {e["name"] for e in chrome["traceEvents"]}
    assert "serve.queue.job" in names
    assert chrome["otherData"]["trace_id"] == trace_id
    # Re-recording the same spans is idempotent, not duplicating.
    ledger.record_spans(trace_id, spans, lambda ns: ns / 1e9)
    assert len(ledger.trace(trace_id)) == 3
    assert ledger.trace_ids() == []  # no runs reference the trace yet


def test_resolve_ledger_path_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    assert resolve_ledger_path(None) is None
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.sqlite"))
    assert resolve_ledger_path(None) == tmp_path / "env.sqlite"
    explicit = tmp_path / "flag.sqlite"
    assert resolve_ledger_path(str(explicit)) == explicit
    assert (
        resolve_ledger_path(str(tmp_path))
        == tmp_path / DEFAULT_LEDGER_NAME
    )


# -- the gtpin runs / gtpin trace show CLI -----------------------------------


@pytest.fixture
def cli_ledger(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    path = tmp_path / "runs.sqlite"
    ledger = RunLedger(path)
    return path, ledger


def test_cli_runs_list_show_diff(cli_ledger, capsys):
    path, ledger = cli_ledger
    a = ledger.record_run(_record(duration_seconds=1.0))
    b = ledger.record_run(_record(duration_seconds=4.0))
    assert main(["runs", "list", "--ledger", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"{a}" in out and f"{b}" in out
    assert main(["runs", "show", str(a), "--ledger", str(path)]) == 0
    assert "cb-gaussian-buffer" in capsys.readouterr().out
    assert main(["runs", "diff", str(a), str(b),
                 "--ledger", str(path)]) == 0
    assert "duration_seconds: 1 -> 4" in capsys.readouterr().out


def test_cli_runs_error_exits(cli_ledger, capsys):
    path, _ = cli_ledger
    assert main(["runs", "list"]) == 2  # no ledger configured
    assert "no ledger configured" in capsys.readouterr().err
    assert main(["runs", "show", "--ledger", str(path)]) == 2
    assert main(["runs", "show", "7", "--ledger", str(path)]) == 1
    assert "no run 7" in capsys.readouterr().err
    assert main(["runs", "diff", "1", "--ledger", str(path)]) == 2


def test_cli_runs_reads_ledger_from_env(cli_ledger, monkeypatch, capsys):
    path, ledger = cli_ledger
    ledger.record_run(_record())
    monkeypatch.setenv("REPRO_LEDGER", str(path))
    assert main(["runs", "list"]) == 0
    assert "profile" in capsys.readouterr().out


def test_cli_trace_show_renders_and_exports(cli_ledger, tmp_path, capsys):
    path, ledger = cli_ledger
    trace_id = trace_context.new_trace_id()
    span = SpanRecord(
        span_id=1, parent_id=None, name="serve.job", category="serve",
        start_ns=0, end_ns=5_000_000, thread_id=1, depth=0, args={},
        trace_id=trace_id,
    )
    ledger.record_spans(trace_id, [span], lambda ns: ns / 1e9)
    out_json = tmp_path / "assembled.json"
    assert main([
        "trace", "show", trace_id,
        "--ledger", str(path), "--out", str(out_json),
    ]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id}" in out
    assert "serve.job" in out
    trace_doc = json.loads(out_json.read_text())
    assert any(
        e.get("name") == "serve.job" for e in trace_doc["traceEvents"]
    )


def test_cli_trace_show_error_exits(cli_ledger, capsys):
    path, _ = cli_ledger
    assert main(["trace", "show", "--ledger", str(path)]) == 2
    assert "missing <trace_id>" in capsys.readouterr().err
    assert main(["trace", "show", "feed" * 8, "--ledger", str(path)]) == 1
    assert "no spans recorded" in capsys.readouterr().err
    assert main(["trace", "not-an-app"]) == 2


# -- end to end: one serve job, one trace, four domains ----------------------


def _domains(spans):
    names = {s.name for s in spans}
    return {
        "client": "serve.client.submit" in names,
        "queue": "serve.queue.job" in names,
        "worker": any(s.thread_id < 0 for s in spans),
        "simulation": any(s.category == "simulation" for s in spans),
    }


@pytest.mark.slow
def test_serve_job_assembles_one_four_domain_trace(tmp_path, monkeypatch):
    from repro.serve import ServeClient, ServeDaemon

    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    path = tmp_path / "runs.sqlite"
    daemon = ServeDaemon(
        port=0, workers=1, capacity=4, sim_engine="batched",
        ledger=RunLedger(path),
    )
    with telemetry.session():
        daemon.start()
        try:
            client = ServeClient(daemon.port, timeout=60.0)
            view = client.run(
                "simulate", "cb-throughput-ao", scale=0.2, jobs=2,
                timeout=180.0,
            )
        finally:
            daemon.stop()
    assert view["state"] == "done"
    trace_id = view["trace_id"]
    assert trace_id and len(trace_id) == 32

    # The daemon recorded exactly one run for the job, and the job's
    # spans assembled under exactly one trace id across all domains.
    ledger = RunLedger(path)  # fresh handle == post-restart read
    (record,) = ledger.runs()
    assert record.command == "serve"
    assert record.kind == "simulate"
    assert record.trace_id == trace_id
    assert record.status == "done"

    spans = ledger.trace(trace_id)
    assert spans, "ledger must persist the trace's spans"
    assert {s.trace_id for s in spans} == {trace_id}
    domains = _domains(spans)
    assert all(domains.values()), f"missing domains: {domains}"

    tree = telemetry.trace_tree_summary(spans, trace_id)
    assert "serve.client.submit" in tree
    assert "serve.queue.job" in tree
    assert "worker lanes" in tree


@pytest.mark.slow
def test_serve_runs_diff_after_restart(tmp_path, monkeypatch):
    """Two serve jobs across a daemon restart diff through the ledger."""
    from repro.serve import ServeClient, ServeDaemon

    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    path = tmp_path / "runs.sqlite"

    def one_job(seed):
        daemon = ServeDaemon(
            port=0, workers=1, capacity=4, ledger=RunLedger(path)
        )
        daemon.start()
        try:
            client = ServeClient(daemon.port, timeout=60.0)
            view = client.run(
                "select", "cb-gaussian-buffer", scale=0.2, seed=seed,
                timeout=120.0,
            )
            assert view["state"] == "done"
        finally:
            daemon.stop()

    one_job(1)
    one_job(2)  # a different daemon process-equivalent: fresh RunLedger
    ledger = RunLedger(path)
    runs = ledger.runs()
    assert len(runs) == 2
    assert {r.command for r in runs} == {"serve"}
    pair = ledger.latest_pair(command="serve")
    assert pair is not None
    diff = ledger.diff(pair[0].id, pair[1].id)
    assert render_diff(diff).startswith("runs diff:")
