"""GT-Pin profiling tools: post-processing correctness."""

import numpy as np
import pytest

from repro.gpu.cache import CacheConfig
from repro.gtpin.profiler import GTPinSession, build_runtime
from repro.gtpin.tools import (
    BasicBlockCountTool,
    CacheSimTool,
    InstructionCountTool,
    InvocationLogTool,
    MemoryBytesTool,
    MemoryLatencyTool,
    OpcodeMixTool,
    SIMDWidthTool,
    StructureTool,
)
from repro.isa.opcodes import OpClass


@pytest.fixture(scope="module")
def profiled(request):
    """Profile the tiny app once with every tool attached."""
    from conftest import TinyApplication, build_tiny_kernel

    k1 = build_tiny_kernel("tiny.k0")
    k2 = build_tiny_kernel("tiny.k1", simd_width=8)
    app = TinyApplication(
        [k1, k2],
        [
            ("tiny.k0", 256, 4.0),
            ("tiny.k1", 512, 2.0),
            ("tiny.k0", 256, 4.0),
            ("tiny.k1", 128, 6.0),
        ],
    )
    session = GTPinSession(
        [
            StructureTool(),
            InstructionCountTool(),
            BasicBlockCountTool(),
            OpcodeMixTool(),
            SIMDWidthTool(),
            MemoryBytesTool(),
            MemoryLatencyTool(),
            CacheSimTool(CacheConfig(size_bytes=64 * 1024)),
            InvocationLogTool(),
        ]
    )
    runtime = build_runtime(app, session=session)
    runtime.run(app.host_program, trial_seed=0)
    # Ground truth: the same program, same seed, with NO instrumentation.
    # GT-Pin must report the program's own behaviour, so its numbers are
    # compared against the native run, not the instrumented one.
    native_run = build_runtime(app).run(app.host_program, trial_seed=0)
    return app, native_run, session.post_process()


def test_structure_report(profiled):
    app, run, report = profiled
    s = report["structure"]
    assert s.unique_kernels == 2
    assert s.unique_basic_blocks == 6  # two 3-block kernels
    assert s.static_instructions == sum(
        src.body.static_instruction_count for src in app.sources.values()
    )


def test_instruction_counts_match_ground_truth(profiled):
    _, run, report = profiled
    ic = report["instructions"]
    assert ic.kernel_invocations == len(run.dispatches)
    assert ic.dynamic_instructions == run.total_instructions
    assert ic.dynamic_basic_blocks == sum(
        int(d.block_counts.sum()) for d in run.dispatches
    )


def test_per_kernel_breakdown(profiled):
    _, run, report = profiled
    ic = report["instructions"]
    assert ic.per_kernel_invocations == {"tiny.k0": 2, "tiny.k1": 2}
    assert sum(ic.per_kernel_instructions.values()) == ic.dynamic_instructions


def test_block_counts_report(profiled):
    _, run, report = profiled
    bc = report["block_counts"]
    assert bc.total_block_executions == sum(
        int(d.block_counts.sum()) for d in run.dispatches
    )
    hottest = bc.hottest(1)
    assert len(hottest) == 1
    # The loop body must be the hottest block.
    (kernel, block_id), count = hottest[0]
    assert block_id == 1


def test_opcode_mix_sums_to_total(profiled):
    _, run, report = profiled
    mix = report["opcode_mix"]
    assert mix.total_dynamic == run.total_instructions
    fractions = mix.dynamic_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[OpClass.SEND] > 0


def test_simd_report(profiled):
    _, run, report = profiled
    simd = report["simd_widths"]
    assert simd.total_dynamic == run.total_instructions
    fractions = simd.dynamic_fractions()
    assert fractions[16] > 0 and fractions[8] > 0
    assert 1 <= simd.average_width() <= 16


def test_memory_bytes_match_ground_truth(profiled):
    _, run, report = profiled
    mb = report["memory_bytes"]
    assert mb.bytes_read == sum(d.bytes_read for d in run.dispatches)
    assert mb.bytes_written == sum(d.bytes_written for d in run.dispatches)
    assert mb.total_bytes == mb.bytes_read + mb.bytes_written


def test_write_to_read_ratio():
    from repro.gtpin.tools.memory_bytes import MemoryBytesReport

    report = MemoryBytesReport(100, 500, {}, {})
    assert report.write_to_read_ratio == pytest.approx(5.0)
    zero_read = MemoryBytesReport(0, 10, {}, {})
    assert zero_read.write_to_read_ratio == float("inf")
    silent = MemoryBytesReport(0, 0, {}, {})
    assert silent.write_to_read_ratio == 0.0


def test_latency_report(profiled):
    _, run, report = profiled
    lat = report["memory_latency"]
    assert len(lat.sends) > 0
    assert lat.mean_latency_cycles() > 0
    for send in lat.sends:
        assert send.dynamic_executions > 0
        assert send.estimated_cycles > 0


def test_cache_sim_report(profiled):
    _, run, report = profiled
    cs = report["cache_sim"]
    assert cs.stats.accesses > 0
    assert 0 < cs.sampled_fraction <= 1.0
    assert cs.stats.hits + cs.stats.misses == cs.stats.accesses


def test_invocation_log(profiled):
    _, run, report = profiled
    log = report["invocations"]
    assert len(log) == len(run.dispatches)
    for profile, dispatch in zip(log, run.dispatches):
        assert profile.kernel_name == dispatch.kernel_name
        assert profile.instruction_count == dispatch.instruction_count
        assert profile.bytes_read == dispatch.bytes_read
        assert profile.sync_epoch == dispatch.sync_epoch
        assert profile.global_work_size == dispatch.global_work_size
    assert log.total_instructions == run.total_instructions


def test_invocation_log_arg_items_sorted(profiled):
    _, _, report = profiled
    log = report["invocations"]
    for profile in log:
        names = [name for name, _ in profile.arg_items]
        assert names == sorted(names)


def test_cache_sim_validation():
    with pytest.raises(ValueError):
        CacheSimTool(max_addresses_per_send=0)


def test_cache_sim_with_hierarchy():
    """Replaying through an L3 -> LLC hierarchy reports both levels."""
    from conftest import TinyApplication, build_tiny_kernel
    from repro.gtpin.profiler import GTPinSession, build_runtime

    app = TinyApplication(
        [build_tiny_kernel("h.k0")],
        [("h.k0", 256, 6.0), ("h.k0", 256, 6.0)],
        name="hier-app",
    )
    session = GTPinSession(
        [
            CacheSimTool(
                CacheConfig(size_bytes=16 * 1024),
                llc_config=CacheConfig(size_bytes=256 * 1024, ways=16),
                max_addresses_per_send=512,
            )
        ]
    )
    runtime = build_runtime(app, session=session)
    runtime.run(app.host_program)
    report = session.post_process()["cache_sim"]
    assert report.llc_stats is not None
    # Every LLC access was an L3 miss.
    assert report.llc_stats.accesses == report.stats.misses
    assert report.dram_accesses <= report.stats.misses


def test_cache_sim_single_level_dram_accounting(profiled):
    _, _, report = profiled
    cs = report["cache_sim"]
    assert cs.llc_stats is None
    assert cs.dram_accesses == cs.stats.misses
