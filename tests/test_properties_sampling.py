"""Property-based tests on the sampling layer over synthetic logs.

Hypothesis generates arbitrary invocation logs (random kernels, counts,
sync epochs) and checks the structural invariants the methodology relies
on: divisions partition, feature mass is conserved, selections stay
within bounds, Eq. (1) behaves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gtpin.tools.invocations import InvocationLog, InvocationProfile
from repro.sampling.error import projected_spi, spi_error_percent
from repro.sampling.explorer import evaluate_config
from repro.sampling.features import (
    ALL_FEATURE_KINDS,
    FeatureKind,
    build_feature_vectors,
)
from repro.sampling.intervals import IntervalScheme, divide
from repro.sampling.selection import SelectionConfig
from repro.sampling.simpoint import SimPointOptions

from conftest import build_tiny_kernel

#: Two fixed kernels shared by all generated logs (structure is constant;
#: hypothesis varies the dynamic behaviour).
_KERNELS = {
    "pk.a": build_tiny_kernel("pk.a"),
    "pk.b": build_tiny_kernel("pk.b", simd_width=8),
}


@st.composite
def invocation_logs(draw):
    n = draw(st.integers(2, 40))
    profiles = []
    epoch = 0
    for i in range(n):
        if i and draw(st.booleans()):
            epoch += 1
        kernel = draw(st.sampled_from(sorted(_KERNELS)))
        binary = _KERNELS[kernel]
        counts = np.array(
            [draw(st.integers(1, 50)) for _ in range(binary.n_blocks)],
            dtype=np.int64,
        )
        arrays = binary.arrays
        profiles.append(
            InvocationProfile(
                index=i,
                kernel_name=kernel,
                global_work_size=draw(st.sampled_from((64, 128, 256))),
                arg_items=(
                    ("iters", float(draw(st.integers(1, 8)))),
                    ("n", 64.0),
                ),
                instruction_count=int(counts @ arrays.instruction_counts),
                bytes_read=int(counts @ arrays.bytes_read),
                bytes_written=int(counts @ arrays.bytes_written),
                block_counts=counts,
                sync_epoch=epoch,
                enqueue_call_index=i * 3,
            )
        )
    return InvocationLog(
        invocations=tuple(profiles), binaries=dict(_KERNELS)
    )


@given(invocation_logs(), st.sampled_from(list(IntervalScheme)))
@settings(max_examples=40, deadline=None)
def test_divisions_always_partition(log, scheme):
    intervals = divide(log, scheme, approx_size=5_000)
    assert intervals[0].start == 0
    assert intervals[-1].stop == len(log.invocations)
    for prev, cur in zip(intervals, intervals[1:]):
        assert cur.start == prev.stop
    assert (
        sum(iv.instruction_count for iv in intervals)
        == log.total_instructions
    )


@given(invocation_logs())
@settings(max_examples=30, deadline=None)
def test_no_division_spans_a_sync_call(log):
    for scheme in (IntervalScheme.SYNC, IntervalScheme.APPROX_100M):
        for interval in divide(log, scheme, approx_size=5_000):
            epochs = {
                log.invocations[i].sync_epoch
                for i in interval.invocation_indices()
            }
            assert len(epochs) == 1


@given(invocation_logs(), st.sampled_from(ALL_FEATURE_KINDS))
@settings(max_examples=30, deadline=None)
def test_feature_values_nonnegative(log, kind):
    intervals = divide(log, IntervalScheme.SYNC)
    for vector in build_feature_vectors(log, intervals, kind):
        assert vector
        assert all(v >= 0 for v in vector.values())


@given(invocation_logs())
@settings(max_examples=30, deadline=None)
def test_bb_feature_mass_equals_instructions(log):
    intervals = divide(log, IntervalScheme.SYNC)
    vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
    for interval, vector in zip(intervals, vectors):
        assert sum(vector.values()) == pytest.approx(
            float(interval.instruction_count)
        )


@given(invocation_logs(), st.sampled_from(list(IntervalScheme)))
@settings(max_examples=15, deadline=None)
def test_selection_invariants_hold_for_any_log(log, scheme):
    seconds = np.linspace(1e-4, 2e-4, len(log.invocations))
    from repro.cofluent.timing import KernelTiming, TimingTrace

    timings = TimingTrace(
        program_name="prop",
        device_name="dev",
        trial_seed=0,
        timings=tuple(
            KernelTiming(i, p.kernel_name, float(seconds[i]), p.sync_epoch)
            for i, p in enumerate(log.invocations)
        ),
    )
    result = evaluate_config(
        SelectionConfig(scheme, FeatureKind.BB),
        log,
        timings,
        approx_size=5_000,
        options=SimPointOptions(max_k=4, restarts=1, max_iterations=20),
    )
    selection = result.selection
    assert 1 <= selection.k <= 4
    assert 0 < selection.selection_fraction <= 1
    assert selection.simulation_speedup >= 1
    assert sum(s.ratio for s in selection.selected) == pytest.approx(1.0)
    assert result.error_percent >= 0
    # A full-coverage "selection" (every interval selected with its exact
    # weight) would project the measured SPI; our k-representative
    # projection stays within a sane envelope of it.
    instructions = np.array(
        [p.instruction_count for p in log.invocations], dtype=np.float64
    )
    projected = projected_spi(selection, seconds, instructions)
    assert projected > 0
    assert result.error_percent == pytest.approx(
        spi_error_percent(selection, seconds, instructions)
    )
