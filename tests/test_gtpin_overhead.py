"""Section III-C: profiling overhead accounting."""

import pytest

from repro.gtpin.instrumentation import Capability
from repro.gtpin.overhead import (
    SIMULATION_SLOWDOWN_BOUND,
    measure_overhead,
)
from repro.gtpin.tools import CacheSimTool, InstructionCountTool


def test_overhead_report_fields(tiny_app):
    report = measure_overhead(tiny_app)
    assert report.native_seconds > 0
    assert report.instrumented_gpu_seconds > report.native_seconds
    assert report.host_drain_seconds > 0
    assert report.record_count == 6
    assert report.trace_bytes > 0


def test_overhead_factor_above_one(tiny_app):
    report = measure_overhead(tiny_app)
    assert report.overhead_factor > 1.0
    assert report.gpu_overhead_factor > 1.0
    assert report.instrumented_seconds == pytest.approx(
        report.instrumented_gpu_seconds + report.host_drain_seconds
    )


def test_overhead_far_below_simulation_bound(tiny_app):
    """The whole point: profiling costs ~2-10x, simulation up to 2,000,000x."""
    report = measure_overhead(tiny_app)
    assert report.overhead_factor < SIMULATION_SLOWDOWN_BOUND / 1000


def test_memory_tracing_costs_more_than_counting(tiny_app):
    light = measure_overhead(tiny_app, tools=[InstructionCountTool()])
    heavy = measure_overhead(
        tiny_app, tools=[InstructionCountTool(), CacheSimTool()]
    )
    assert (
        heavy.instrumented_gpu_seconds > light.instrumented_gpu_seconds
    )


def test_same_seed_native_time_is_stable(tiny_app):
    a = measure_overhead(tiny_app, trial_seed=4)
    b = measure_overhead(tiny_app, trial_seed=4)
    assert a.native_seconds == pytest.approx(b.native_seconds)


# -- Section III applied to ourselves: self-overhead attribution -------------


from repro import faults, telemetry
from repro.faults import FaultPlan
from repro.faults.injector import FaultInjector
from repro.gtpin.overhead import (
    OBSERVATION_SITES,
    RESIDUAL_SITE,
    SelfOverheadReport,
    SiteCost,
    attribute_self_overhead,
    calibrate_unit_costs,
    estimate_observation_costs,
    measure_self_overhead,
)
from repro.obs import events as obs_events

UNIT = {site: 1.0 for site in OBSERVATION_SITES}


def test_calibration_covers_every_site_with_positive_costs():
    costs = calibrate_unit_costs()
    assert set(costs) == set(OBSERVATION_SITES)
    for site, cost in costs.items():
        assert cost > 0, site
        assert cost < 0.01, site  # per-op cost, not per-loop


def test_calibration_leaves_no_trace_in_live_registries():
    with telemetry.session() as tm, obs_events.session() as log:
        calibrate_unit_costs()
        assert len(tm.counters) == 0
        assert tm.spans() == []
        assert len(log) == 0


def test_estimate_counts_operations_exactly():
    with telemetry.session() as tm, obs_events.session() as log:
        tm.inc("x")
        tm.inc("x", 5)  # value grows by 5, ops by 1
        tm.observe("g", 1.0)
        tm.observe_hist("h", 2.0, "s")
        with tm.span("s"):
            pass
        log.warn("w")
        log.debug("d")
        # Near-zero probability: draws are counted but never inject
        # (an injection would emit events and inc counters of its own).
        plan = FaultPlan.uniform(1e-12, sites=("jit.build",))
        with faults.session(plan) as injector:
            for _ in range(3):
                injector.draw("jit.build")
            sites = {
                s.site: s
                for s in estimate_observation_costs(
                    tm, log, unit_costs=UNIT
                )
            }
    assert sites["telemetry.counter"].operations == 2
    assert sites["telemetry.gauge"].operations == 1
    assert sites["telemetry.histogram"].operations == 1
    assert sites["telemetry.span"].operations == 1
    assert sites["events.emit"].operations == 2
    assert sites["faults.check"].operations == 3
    # Unit cost 1.0 makes total_seconds mirror the op count.
    assert sites["telemetry.counter"].total_seconds == 2.0


def test_fault_injector_tallies_draws():
    injector = FaultInjector(FaultPlan.uniform(0.5, sites=("jit.build",)))
    injector.begin_scope("test")
    for _ in range(7):
        injector.draw("jit.build")
    assert injector.draws == 7
    assert faults.get().draws == 0  # disabled singleton never counts


def test_residual_row_reconciles_table_to_measured_delta():
    report = SelfOverheadReport(
        sites=(SiteCost("telemetry.counter", 10, 1e-6, 1e-5),),
        walltime_delta_seconds=0.5,
    )
    rows = report.rows()
    assert rows[-1].site == RESIDUAL_SITE
    # Exact reconciliation: attributed + residual == measured delta.
    assert sum(r.total_seconds for r in rows) == report.total_seconds == 0.5
    assert report.residual_seconds == 0.5 - 1e-5
    assert RESIDUAL_SITE in report.table()
    doc = report.to_json()
    assert doc["walltime_delta_seconds"] == 0.5
    assert doc["sites"][-1]["site"] == RESIDUAL_SITE


def test_unmeasured_report_has_no_residual_row():
    report = SelfOverheadReport(
        sites=(SiteCost("telemetry.counter", 10, 1e-6, 1e-5),)
    )
    assert [r.site for r in report.rows()] == ["telemetry.counter"]
    assert report.total_seconds == report.attributed_seconds == 1e-5


def test_measure_self_overhead_off_on_off():
    def workload():
        tm = telemetry.get()
        for _ in range(200):
            tm.inc("self.demo")

    report = measure_self_overhead(workload, unit_costs=UNIT)
    assert report.walltime_delta_seconds is not None
    assert report.walltime_delta_seconds >= 0.0
    sites = {s.site: s for s in report.sites}
    # Only the instrumented (on) run records ops: exactly one run's worth.
    assert sites["telemetry.counter"].operations == 200
    # The caller's registries come back disabled, not leaked.
    assert not telemetry.is_enabled()
    assert not obs_events.is_enabled()


def test_attribute_self_overhead_includes_measured_tool_spans(tiny_app):
    with telemetry.session() as tm:
        with tm.span("gtpin.tool.icount"):
            pass
        with tm.span("gtpin.tool.icount"):
            pass
        report = attribute_self_overhead(tm, unit_costs=UNIT)
    (tool,) = report.tools
    assert tool.tool == "icount"
    assert tool.spans == 2
    assert tool.seconds >= 0.0
    assert "gtpin.tool.icount" in report.table()
