"""Section III-C: profiling overhead accounting."""

import pytest

from repro.gtpin.instrumentation import Capability
from repro.gtpin.overhead import (
    SIMULATION_SLOWDOWN_BOUND,
    measure_overhead,
)
from repro.gtpin.tools import CacheSimTool, InstructionCountTool


def test_overhead_report_fields(tiny_app):
    report = measure_overhead(tiny_app)
    assert report.native_seconds > 0
    assert report.instrumented_gpu_seconds > report.native_seconds
    assert report.host_drain_seconds > 0
    assert report.record_count == 6
    assert report.trace_bytes > 0


def test_overhead_factor_above_one(tiny_app):
    report = measure_overhead(tiny_app)
    assert report.overhead_factor > 1.0
    assert report.gpu_overhead_factor > 1.0
    assert report.instrumented_seconds == pytest.approx(
        report.instrumented_gpu_seconds + report.host_drain_seconds
    )


def test_overhead_far_below_simulation_bound(tiny_app):
    """The whole point: profiling costs ~2-10x, simulation up to 2,000,000x."""
    report = measure_overhead(tiny_app)
    assert report.overhead_factor < SIMULATION_SLOWDOWN_BOUND / 1000


def test_memory_tracing_costs_more_than_counting(tiny_app):
    light = measure_overhead(tiny_app, tools=[InstructionCountTool()])
    heavy = measure_overhead(
        tiny_app, tools=[InstructionCountTool(), CacheSimTool()]
    )
    assert (
        heavy.instrumented_gpu_seconds > light.instrumented_gpu_seconds
    )


def test_same_seed_native_time_is_stable(tiny_app):
    a = measure_overhead(tiny_app, trial_seed=4)
    b = measure_overhead(tiny_app, trial_seed=4)
    assert a.native_seconds == pytest.approx(b.native_seconds)
