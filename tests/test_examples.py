"""Smoke tests: every example script runs to completion.

Executed in-process via ``runpy`` so coverage and import errors surface
directly.  The whole-suite characterization example is exercised at a
tiny scale through its argv interface.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: Fast examples run plain; the multi-second end-to-end sweeps carry the
#: ``slow`` marker and only run in the full lane (``pytest -m ""``).
CHEAP_EXAMPLES = (
    "quickstart.py",
    pytest.param("select_simulation_points.py", marks=pytest.mark.slow),
    pytest.param("cross_architecture_study.py", marks=pytest.mark.slow),
    "custom_gtpin_tool.py",
    pytest.param("sampled_simulation.py", marks=pytest.mark.slow),
    "phase_analysis.py",
)


@pytest.mark.parametrize("script", CHEAP_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_output_mentions_figures(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Instruction mix" in out
    assert "SIMD widths" in out
    assert "Memory activity" in out


def test_characterize_suite_with_scale_argument(capsys, monkeypatch):
    monkeypatch.setattr(
        sys, "argv", ["characterize_suite.py", "0.05"]
    )
    runpy.run_path(
        str(EXAMPLES_DIR / "characterize_suite.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "Figure 4c" in out
    assert "Suite-level headlines" in out
