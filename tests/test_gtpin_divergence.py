"""Branch-divergence tool."""

import pytest

from repro.gtpin.profiler import GTPinSession, build_runtime
from repro.gtpin.tools import DivergenceTool

from conftest import TinyApplication, build_tiny_kernel
from repro.isa.builder import KernelBuilder
from repro.isa.program import TripCount


def _divergent_kernel(name="div.k", p_taken=0.25):
    kb = KernelBuilder(name, simd_width=16, arg_names=("iters", "n"))
    with kb.block("prologue") as b:
        b.mov(exec_size=1)
    with kb.loop(TripCount(base=0, arg="iters", scale=1.0)):
        with kb.block("always") as b:
            b.alu("add")
            b.alu("mul")
        with kb.branch(p_taken):
            with kb.block("rare") as b:
                b.alu("mad")
                b.alu("mad")
                b.load()
    with kb.block("epilogue") as b:
        b.control("ret")
    return kb.build()


def _report(kernels, enqueues):
    app = TinyApplication(kernels, enqueues, name="div-app")
    session = GTPinSession([DivergenceTool()])
    runtime = build_runtime(app, session=session)
    runtime.run(app.host_program, trial_seed=0)
    return session.post_process()["divergence"]


def test_straight_line_kernel_has_no_divergence():
    report = _report(
        [build_tiny_kernel("s.k")], [("s.k", 256, 8.0)]
    )
    k = report.per_kernel["s.k"]
    assert k.divergent_fraction == 0.0
    assert report.overall_divergent_fraction() == 0.0


def test_divergent_branch_detected():
    report = _report(
        [_divergent_kernel(p_taken=0.25)], [("div.k", 256, 8.0)]
    )
    k = report.per_kernel["div.k"]
    assert k.divergent_instructions > 0
    assert 0.0 < k.divergent_fraction < 0.5
    # The rare arm runs ~25% of the time.
    assert k.mean_taken_rate == pytest.approx(0.25, abs=0.1)


def test_more_biased_branch_less_divergent_work():
    rare = _report(
        [_divergent_kernel("a.k", p_taken=0.2)], [("a.k", 256, 16.0)]
    ).per_kernel["a.k"]
    common = _report(
        [_divergent_kernel("b.k", p_taken=0.9)], [("b.k", 256, 16.0)]
    ).per_kernel["b.k"]
    assert rare.divergent_instructions < common.divergent_instructions
    assert rare.mean_taken_rate < common.mean_taken_rate


def test_most_divergent_kernel():
    report = _report(
        [build_tiny_kernel("s.k"), _divergent_kernel("d.k", 0.3)],
        [("s.k", 256, 8.0), ("d.k", 256, 8.0)],
    )
    worst = report.most_divergent()
    assert worst is not None
    assert worst.kernel_name == "d.k"


def test_empty_report():
    from repro.gtpin.tools.divergence import DivergenceReport

    empty = DivergenceReport(per_kernel={})
    assert empty.overall_divergent_fraction() == 0.0
    assert empty.most_divergent() is None


def test_facedetect_is_divergent():
    """The vision apps are generated with divergent branches."""
    from repro.workloads.suite import load_app

    app = load_app("cb-vision-facedetect-mobile", scale=0.05)
    session = GTPinSession([DivergenceTool()])
    runtime = build_runtime(app, session=session)
    runtime.run(app.host_program, trial_seed=0)
    report = session.post_process()["divergence"]
    assert report.overall_divergent_fraction() > 0.0
