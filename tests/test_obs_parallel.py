"""Cross-process merge of histograms and events under the worker pool.

The parallel pool ships each worker's telemetry snapshot (now carrying
histograms) and event records back with the task result; the parent
merges them in task order.  These tests drive real profiled workloads
through ``parallel_map`` with ``jobs=2`` *while a fault plan is active
inside each worker* and assert the merged registry conserves histogram
count/sum exactly against the serial run, and that fault incidents and
health flags survive the process boundary.
"""

import pytest

from repro import faults, telemetry
from repro.faults import FaultPlan
from repro.gpu.device import HD4000
from repro.obs import events as obs_events
from repro.parallel.pool import parallel_map
from repro.sampling.pipeline import profile_workload
from repro.workloads import load_app

#: High-rate plan across degradation sites so every task records damage.
FAULT_SPEC = "seed=11;event.lost=0.4;trace.truncate=0.4"


def _profile_under_faults(app_name: str, scale: float, spec: str):
    """Worker body: profile one app with fault injection active.

    Runs inside the worker's own telemetry + event-log session (the
    pool establishes both when capture is on); the fault session is
    process-local, so each worker enables its own from the spec.
    """
    app = load_app(app_name, scale=scale)
    with faults.session(FaultPlan.parse(spec)):
        workload = profile_workload(app, HD4000, 0)
    return workload.health.flags


TASKS = [
    ("cb-gaussian-buffer", 0.1, FAULT_SPEC),
    ("cb-gaussian-image", 0.1, FAULT_SPEC),
]

#: Histograms whose observations are deterministic quantities (bytes,
#: record counts), so serial and parallel sums must match bit-for-bit.
DETERMINISTIC_HISTS = (
    "gtpin.trace_buffer.record_bytes",
    "gtpin.trace_buffer.drain_records",
    "opencl.flush_batch_kernels",
)


def _run(jobs: int):
    """One full fan-out; returns (flags per task, histogram table, events)."""
    with telemetry.session() as tm, obs_events.session() as log:
        outcomes = parallel_map(
            _profile_under_faults, TASKS, jobs=jobs, label="test.fanout"
        )
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        hists = {
            name: (h.count, h.total, dict(h.buckets))
            for name, h in tm.counters.histograms.items()
        }
        events = log.records()
    return [o.value for o in outcomes], hists, events


@pytest.mark.slow
def test_parallel_histogram_merge_conserves_count_and_sum():
    serial_flags, serial_hists, serial_events = _run(jobs=1)
    parallel_flags, parallel_hists, parallel_events = _run(jobs=2)

    # The damaged-profile flags are a pure function of (app, seed, plan),
    # so the two runs degrade identically -- and actually degrade.
    assert serial_flags == parallel_flags
    for flags in parallel_flags:
        assert flags, "fault plan injected nothing; test is vacuous"

    # Same histogram families on both sides...
    assert set(serial_hists) == set(parallel_hists)
    assert set(DETERMINISTIC_HISTS) <= set(parallel_hists)
    for name in serial_hists:
        s_count, s_total, s_buckets = serial_hists[name]
        p_count, p_total, p_buckets = parallel_hists[name]
        # ...with exact count conservation across the process boundary.
        assert p_count == s_count, name
        if name in DETERMINISTIC_HISTS:
            # Value-deterministic quantities conserve the sum and the
            # full bucket distribution too (timing histograms only
            # conserve counts -- wall clocks differ between runs).
            assert p_total == pytest.approx(s_total), name
            assert p_buckets == s_buckets, name

    # Fault incidents crossed the process boundary as queryable events.
    injected = [e for e in parallel_events if e.name == "fault.injected"]
    assert injected
    assert len(injected) == len(
        [e for e in serial_events if e.name == "fault.injected"]
    )
    sites = {dict(e.fields).get("site") for e in injected}
    assert sites <= {"event.lost", "trace.truncate"}
