"""Trace buffer: writes, byte accounting, overflow drains."""

import numpy as np
import pytest

from repro.gtpin.trace_buffer import TraceBuffer, TraceRecord


def _record(i=0, n_blocks=4, payloads=None):
    return TraceRecord(
        dispatch_index=i,
        kernel_name="k",
        global_work_size=64,
        arg_values={"iters": 2.0},
        n_hw_threads=4,
        block_counts=np.ones(n_blocks, dtype=np.int64),
        enqueue_call_index=i,
        sync_epoch=0,
        payloads=payloads or {},
    )


def test_record_bytes_scale_with_blocks():
    small = _record(n_blocks=2).record_bytes
    large = _record(n_blocks=200).record_bytes
    assert large > small
    assert large - small == (200 - 2) * 8


def test_payload_bytes_counted():
    with_payload = _record(payloads={"trace": np.zeros(100)}).record_bytes
    without = _record().record_bytes
    assert with_payload == without + 800


def test_write_and_drain_order():
    buffer = TraceBuffer()
    for i in range(5):
        buffer.write(_record(i))
    assert len(buffer) == 5
    records = buffer.drain()
    assert [r.dispatch_index for r in records] == [0, 1, 2, 3, 4]
    assert len(buffer) == 0
    assert buffer.resident_bytes == 0


def test_total_records_survives_drain():
    buffer = TraceBuffer()
    buffer.write(_record(0))
    buffer.drain()
    buffer.write(_record(1))
    assert buffer.total_records == 2


def test_overflow_triggers_implicit_drain():
    record = _record()
    # Capacity for ~2 records only.
    buffer = TraceBuffer(capacity_bytes=record.record_bytes * 2 + 1)
    for i in range(10):
        buffer.write(_record(i))
    assert buffer.overflow_drains > 0
    # Nothing lost: drain returns everything ever written.
    assert len(buffer.drain()) == 10


def test_invalid_capacity():
    with pytest.raises(ValueError):
        TraceBuffer(capacity_bytes=0)


def test_resident_bytes_tracks_writes():
    buffer = TraceBuffer()
    record = _record()
    buffer.write(record)
    assert buffer.resident_bytes == record.record_bytes


# -- oversized records (larger than the whole buffer) ------------------------
#
# Regression: a record exceeding capacity written into an *empty* buffer
# used to be admitted silently -- no overflow counted then, and the
# forced drain it causes was only counted (once more) when the next
# write flushed it.  The forced drain is now counted at admit time and
# never double-counted.


def test_oversized_record_counts_forced_drain_immediately():
    oversized = _record(n_blocks=100)  # 864 bytes
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(oversized)
    assert buffer.overflow_drains == 1
    assert len(buffer) == 1


def test_oversized_record_drain_not_double_counted():
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(_record(0, n_blocks=100))
    assert buffer.overflow_drains == 1
    # The next write performs the (already counted) implicit drain.
    buffer.write(_record(1))
    assert buffer.overflow_drains == 1
    # Nothing lost, order preserved.
    assert [r.dispatch_index for r in buffer.drain()] == [0, 1]


def test_consecutive_oversized_records_each_count_once():
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(_record(0, n_blocks=100))
    buffer.write(_record(1, n_blocks=100))
    assert buffer.overflow_drains == 2
    assert len(buffer.drain()) == 2


def test_explicit_drain_clears_pending_oversized_flag():
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(_record(0, n_blocks=100))
    assert buffer.overflow_drains == 1
    buffer.drain()
    # The pre-counted implicit drain never happens now; a small write
    # into the emptied buffer must not consume the stale flag later.
    buffer.write(_record(1))
    assert buffer.overflow_drains == 1
    # ...and a genuine overflow afterwards still counts normally.
    buffer.write(_record(2))
    assert buffer.overflow_drains == 2


# -- property tests (hypothesis) ---------------------------------------------
#
# The buffer's contract, under *arbitrary* record sizes and capacities:
# records are never split or reordered across flushes, overflow
# accounting matches a greedy-packing oracle, and bytes are conserved
# exactly -- ``total_bytes_written == drained + resident + lost_bytes``
# -- even when fault injection truncates flushes or corrupts records.

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults

_block_counts = st.lists(
    st.integers(min_value=0, max_value=120), min_size=1, max_size=30
)
_capacities = st.integers(min_value=80, max_value=1500)


def _records_of(n_blocks_list):
    return [_record(i, n_blocks=n) for i, n in enumerate(n_blocks_list)]


@settings(deadline=None, max_examples=60)
@given(n_blocks_list=_block_counts, capacity=_capacities, data=st.data())
def test_property_no_record_split_or_reorder(n_blocks_list, capacity, data):
    """Every record lands in exactly one drain batch, in write order."""
    buffer = TraceBuffer(capacity_bytes=capacity)
    batches = []
    for record in _records_of(n_blocks_list):
        buffer.write(record)
        if data.draw(st.booleans(), label="drain now"):
            batches.append(buffer.drain())
    batches.append(buffer.drain())
    indices = [r.dispatch_index for batch in batches for r in batch]
    assert indices == list(range(len(n_blocks_list)))
    assert buffer.resident_bytes == 0 and len(buffer) == 0


@settings(deadline=None, max_examples=60)
@given(n_blocks_list=_block_counts, capacity=_capacities)
def test_property_overflow_accounting_matches_oracle(n_blocks_list, capacity):
    """Overflow drains equal a greedy bin-packing oracle's count."""
    records = _records_of(n_blocks_list)
    buffer = TraceBuffer(capacity_bytes=capacity)
    expected = 0
    resident = 0
    pending_oversized = False
    for record in records:
        size = record.record_bytes
        if resident + size > capacity and resident > 0:
            resident = 0
            if pending_oversized:
                pending_oversized = False
            else:
                expected += 1
        resident += size
        if size > capacity:
            expected += 1
            pending_oversized = True
        buffer.write(record)
    assert buffer.overflow_drains == expected


@settings(deadline=None, max_examples=60)
@given(n_blocks_list=_block_counts, capacity=_capacities)
def test_property_bytes_conserved_without_faults(n_blocks_list, capacity):
    records = _records_of(n_blocks_list)
    buffer = TraceBuffer(capacity_bytes=capacity)
    written = 0
    for record in records:
        buffer.write(record)
        written += record.record_bytes
    assert buffer.total_bytes_written == written
    drained = buffer.drain()
    assert sum(r.record_bytes for r in drained) == written
    assert buffer.lost_bytes == 0 and buffer.lost_records == 0


@settings(deadline=None, max_examples=60)
@given(
    n_blocks_list=_block_counts,
    capacity=_capacities,
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_bytes_conserved_under_trace_faults(
    n_blocks_list, capacity, fault_seed
):
    """Conservation holds exactly through corrupted + truncated flushes."""
    plan = faults.FaultPlan(
        seed=fault_seed,
        rules=(
            faults.FaultRule("trace.truncate", 0.5),
            faults.FaultRule("trace.corrupt", 0.3),
        ),
    )
    with faults.session(plan):
        records = _records_of(n_blocks_list)
        buffer = TraceBuffer(capacity_bytes=capacity)
        for record in records:
            buffer.write(record)
        drained = buffer.drain()
    written = sum(r.record_bytes for r in records)
    drained_bytes = sum(r.record_bytes for r in drained)
    # Corruption scrambles counters in place, never the byte footprint.
    assert buffer.total_bytes_written == written
    assert drained_bytes + buffer.lost_bytes == written
    assert len(drained) + buffer.lost_records == len(records)
    # Survivors are a subsequence of the write order (tail-drops only).
    indices = [r.dispatch_index for r in drained]
    assert indices == sorted(indices)
    # Every surviving corrupted record is counted; the count may exceed
    # the survivors because corrupted records can be truncated away too.
    assert buffer.corrupted_records >= sum(1 for r in drained if r.corrupted)
    assert buffer.corrupted_records <= len(records)
