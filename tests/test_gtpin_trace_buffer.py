"""Trace buffer: writes, byte accounting, overflow drains."""

import numpy as np
import pytest

from repro.gtpin.trace_buffer import TraceBuffer, TraceRecord


def _record(i=0, n_blocks=4, payloads=None):
    return TraceRecord(
        dispatch_index=i,
        kernel_name="k",
        global_work_size=64,
        arg_values={"iters": 2.0},
        n_hw_threads=4,
        block_counts=np.ones(n_blocks, dtype=np.int64),
        enqueue_call_index=i,
        sync_epoch=0,
        payloads=payloads or {},
    )


def test_record_bytes_scale_with_blocks():
    small = _record(n_blocks=2).record_bytes
    large = _record(n_blocks=200).record_bytes
    assert large > small
    assert large - small == (200 - 2) * 8


def test_payload_bytes_counted():
    with_payload = _record(payloads={"trace": np.zeros(100)}).record_bytes
    without = _record().record_bytes
    assert with_payload == without + 800


def test_write_and_drain_order():
    buffer = TraceBuffer()
    for i in range(5):
        buffer.write(_record(i))
    assert len(buffer) == 5
    records = buffer.drain()
    assert [r.dispatch_index for r in records] == [0, 1, 2, 3, 4]
    assert len(buffer) == 0
    assert buffer.resident_bytes == 0


def test_total_records_survives_drain():
    buffer = TraceBuffer()
    buffer.write(_record(0))
    buffer.drain()
    buffer.write(_record(1))
    assert buffer.total_records == 2


def test_overflow_triggers_implicit_drain():
    record = _record()
    # Capacity for ~2 records only.
    buffer = TraceBuffer(capacity_bytes=record.record_bytes * 2 + 1)
    for i in range(10):
        buffer.write(_record(i))
    assert buffer.overflow_drains > 0
    # Nothing lost: drain returns everything ever written.
    assert len(buffer.drain()) == 10


def test_invalid_capacity():
    with pytest.raises(ValueError):
        TraceBuffer(capacity_bytes=0)


def test_resident_bytes_tracks_writes():
    buffer = TraceBuffer()
    record = _record()
    buffer.write(record)
    assert buffer.resident_bytes == record.record_bytes


# -- oversized records (larger than the whole buffer) ------------------------
#
# Regression: a record exceeding capacity written into an *empty* buffer
# used to be admitted silently -- no overflow counted then, and the
# forced drain it causes was only counted (once more) when the next
# write flushed it.  The forced drain is now counted at admit time and
# never double-counted.


def test_oversized_record_counts_forced_drain_immediately():
    oversized = _record(n_blocks=100)  # 864 bytes
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(oversized)
    assert buffer.overflow_drains == 1
    assert len(buffer) == 1


def test_oversized_record_drain_not_double_counted():
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(_record(0, n_blocks=100))
    assert buffer.overflow_drains == 1
    # The next write performs the (already counted) implicit drain.
    buffer.write(_record(1))
    assert buffer.overflow_drains == 1
    # Nothing lost, order preserved.
    assert [r.dispatch_index for r in buffer.drain()] == [0, 1]


def test_consecutive_oversized_records_each_count_once():
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(_record(0, n_blocks=100))
    buffer.write(_record(1, n_blocks=100))
    assert buffer.overflow_drains == 2
    assert len(buffer.drain()) == 2


def test_explicit_drain_clears_pending_oversized_flag():
    buffer = TraceBuffer(capacity_bytes=100)
    buffer.write(_record(0, n_blocks=100))
    assert buffer.overflow_drains == 1
    buffer.drain()
    # The pre-counted implicit drain never happens now; a small write
    # into the emptied buffer must not consume the stale flag later.
    buffer.write(_record(1))
    assert buffer.overflow_drains == 1
    # ...and a genuine overflow afterwards still counts normally.
    buffer.write(_record(2))
    assert buffer.overflow_drains == 2
