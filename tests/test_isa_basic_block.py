"""Basic blocks and static summaries."""

import pytest

from repro.isa.basic_block import BasicBlock, BlockSummary
from repro.isa.instruction import Instruction, MemoryDirection, SendMessage
from repro.isa.opcodes import OpClass, Opcode


def _block(instrs, block_id=0):
    return BasicBlock(block_id, instrs)


def _mixed_block():
    return _block(
        [
            Instruction(Opcode.MOV, exec_size=16, compact=True),
            Instruction(Opcode.ADD, exec_size=16),
            Instruction(Opcode.AND, exec_size=8),
            Instruction(
                Opcode.SEND,
                exec_size=16,
                send=SendMessage(MemoryDirection.READ, bytes_per_channel=4),
            ),
            Instruction(Opcode.JMPI, exec_size=1),
        ]
    )


def test_empty_block_rejected():
    with pytest.raises(ValueError, match="no instructions"):
        BasicBlock(0, [])


def test_negative_id_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        BasicBlock(-1, [Instruction(Opcode.MOV)])


def test_summary_counts_classes():
    s = _mixed_block().summary
    assert s.instruction_count == 5
    assert s.class_counts[OpClass.MOVE] == 1
    assert s.class_counts[OpClass.COMPUTATION] == 1
    assert s.class_counts[OpClass.LOGIC] == 1
    assert s.class_counts[OpClass.SEND] == 1
    assert s.class_counts[OpClass.CONTROL] == 1


def test_summary_counts_widths():
    s = _mixed_block().summary
    assert s.width_counts[16] == 3
    assert s.width_counts[8] == 1
    assert s.width_counts[1] == 1
    assert s.width_counts[2] == 0


def test_summary_memory_footprint():
    s = _mixed_block().summary
    assert s.bytes_read == 64  # 16 channels x 4 bytes
    assert s.bytes_written == 0
    assert s.send_count == 1


def test_summary_encoded_bytes():
    s = _mixed_block().summary
    # One compact (8B) + four native (16B).
    assert s.encoded_bytes == 8 + 4 * 16


def test_summary_is_cached():
    block = _mixed_block()
    assert block.summary is block.summary


def test_summary_matches_manual_recompute():
    block = _mixed_block()
    assert BlockSummary.of(block.instructions).instruction_count == len(block)


def test_with_instructions_preserves_identity():
    block = _mixed_block()
    rewritten = block.with_instructions(
        [Instruction(Opcode.ADD, exec_size=1, is_instrumentation=True)]
        + list(block.instructions)
    )
    assert rewritten.block_id == block.block_id
    assert rewritten.label == block.label
    assert rewritten.instruction_count == block.instruction_count + 1
    # Original untouched (no-perturbation guarantee).
    assert block.instruction_count == 5


def test_iteration_and_len():
    block = _mixed_block()
    assert len(list(block)) == len(block) == 5


def test_disassemble_contains_label_and_instructions():
    text = _mixed_block().disassemble()
    assert text.startswith("BB0:")
    assert "send(16)" in text
