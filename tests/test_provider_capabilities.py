"""Provider conformance suite: every backend passes the same contract.

Each registered device provider (:mod:`repro.gpu.providers`) is driven
through four groups of checks:

1. **capability invariants** -- the flags are internally consistent and
   every advertised device resolves through the registry;
2. **engine identity** -- reference, vectorized, and batched simulation
   are bit-identical on the deterministic mini-suite, per dispatch;
3. **dispatch/timing sanity** -- hypothesis properties over the roofline
   model and the work-item -> hardware-thread mapping; and
4. **per-provider goldens** -- Table I-style profiling statistics pinned
   to JSON files (regenerate with ``REPRO_REGEN_GOLDENS=1``).

Adding a third backend is "implement the interface, pass this suite":
register the provider and every test here picks it up automatically.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cache import CacheConfig
from repro.gpu.execution import GPUDevice
from repro.gpu.providers import (
    get_provider,
    known_device_tokens,
    list_providers,
    provider_of,
    resolve_device,
)
from repro.gpu.timing import TimingModel
from repro.sampling.pipeline import profile_workload
from repro.simulation import dispatch_graph
from repro.simulation.detailed import DetailedGPUSimulator

from conftest import MINI_SUITE, build_tiny_kernel
from test_goldens import _check_golden

PROVIDERS = list_providers()
PROVIDER_IDS = [f"provider_{name}" for name in PROVIDERS]

provider_param = pytest.mark.parametrize(
    "provider_name", PROVIDERS, ids=PROVIDER_IDS
)


def test_at_least_two_providers_registered():
    """The cross-vendor story needs gen plus at least one non-GEN."""
    assert "gen" in PROVIDERS
    assert "wave64" in PROVIDERS
    assert len(PROVIDERS) >= 2


# -- 1. capability invariants -------------------------------------------------


@provider_param
def test_capability_flags_consistent(provider_name):
    caps = get_provider(provider_name).capabilities
    assert caps.vendor
    assert caps.compute_unit_name in ("EU", "CU")
    assert caps.thread_name
    # Compile widths are part of the exec-size set (checked again here
    # in case a provider bypasses ProviderCapabilities.__post_init__).
    assert set(caps.simd_compile_widths) <= caps.exec_sizes
    for size in caps.exec_sizes:
        assert size > 0 and size & (size - 1) == 0
    if caps.wavefront_width:
        assert caps.wavefront_width in caps.exec_sizes
    # The timing quirks validate themselves; pin the useful ranges.
    assert 0 < caps.timing.bandwidth_efficiency <= 1
    assert 0 < caps.timing.issue_efficiency <= 1
    assert caps.timing.noise_sigma >= 0


@provider_param
def test_devices_advertise_their_provider(provider_name):
    provider = get_provider(provider_name)
    devices = provider.devices()
    assert devices, f"provider {provider_name} ships no devices"
    for token, spec in devices.items():
        assert spec.provider == provider_name
        assert spec.wavefront_width == provider.capabilities.wavefront_width
        assert spec.compute_unit_name == (
            provider.capabilities.compute_unit_name
        )
        # Every advertised token resolves, bare and qualified.
        assert resolve_device(f"{provider_name}:{token}") is spec
        assert provider.device(token) is spec
        assert provider.device(spec.name) is spec
        assert provider_of(spec) is provider
    assert provider.default_device is next(iter(devices.values()))


@provider_param
def test_cache_geometry_constructs(provider_name):
    provider = get_provider(provider_name)
    for spec in provider.devices().values():
        config = provider.cache_config(spec)
        assert config.size_bytes == spec.llc_kb * 1024
        assert config.line_bytes == provider.capabilities.cache_line_bytes
        assert config.ways == provider.capabilities.cache_ways
        assert config.n_sets > 0
        assert CacheConfig.for_device(spec) == config


@provider_param
def test_reclocked_devices_resolve_through_registry(provider_name):
    """Figure-8 ladder rungs stay inside the provider's namespace."""
    provider = get_provider(provider_name)
    for token, spec in provider.devices().items():
        rung = resolve_device(f"{provider_name}:{token}@700MHz")
        assert rung.frequency_mhz == 700.0
        assert rung.provider == provider_name
        assert rung.base_name == spec.name
        # Re-clocking never changes the threading model.
        assert rung.items_per_thread(16) == spec.items_per_thread(16)


@provider_param
def test_binary_validation_accepts_suite_kernels(provider_name):
    provider = get_provider(provider_name)
    provider.validate_binary(build_tiny_kernel())
    # A capability set that lacks the kernel's widths must reject it.
    from repro.isa.kernel import validate_exec_sizes

    with pytest.raises(ValueError, match="execution sizes"):
        validate_exec_sizes(
            build_tiny_kernel(), frozenset({1, 2}), provider=provider_name
        )


def test_known_device_tokens_cover_all_providers():
    tokens = known_device_tokens()
    for name in PROVIDERS:
        for token in get_provider(name).devices():
            assert f"{name}:{token}" in tokens


# -- 2. engine identity on the mini suite -------------------------------------


def _identity_cache(provider) -> CacheConfig:
    """A small cache in the provider's own geometry: real pressure, so
    hits/misses/evictions all occur, but vendor line size / ways."""
    return CacheConfig(
        size_bytes=32 * 1024,
        line_bytes=provider.capabilities.cache_line_bytes,
        ways=4,
    )


@pytest.fixture(scope="module", params=PROVIDERS, ids=PROVIDER_IDS)
def provider_workloads(request, mini_suite):
    """The mini-suite profiled on one provider's default device."""
    provider = get_provider(request.param)
    device = provider.default_device
    return provider, [
        (app, profile_workload(app, device, trial_seed=3))
        for app in mini_suite
    ]


def _run_engine(provider, app, workload, engine):
    """Per-dispatch results of one engine over one profiled app."""
    simulator = DetailedGPUSimulator(
        provider.default_device, _identity_cache(provider), engine=engine
    )
    rng = np.random.default_rng(0)
    log = workload.log
    results = []
    if engine == "batched":
        epochs = dispatch_graph.partition_epochs(
            dispatch_graph.nodes_from_log(
                log, list(range(len(log.invocations)))
            )
        )
        for epoch in epochs:
            items = []
            for node in epoch.nodes:
                profile = log.invocations[node.index]
                binary = app.sources[profile.kernel_name].body
                env = {**dict(profile.data_items), **dict(profile.arg_items)}
                items.append((binary, env, profile.global_work_size))
            results.extend(simulator.simulate_epoch(items, rng))
    else:
        for profile in log.invocations:
            binary = app.sources[profile.kernel_name].body
            env = {**dict(profile.data_items), **dict(profile.arg_items)}
            results.append(
                simulator.simulate(
                    binary, env, profile.global_work_size, rng
                )
            )
    return results, simulator


def _assert_dispatches_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.kernel_name == w.kernel_name
        assert g.instruction_count == w.instruction_count
        assert g.simulated_instructions == w.simulated_instructions
        assert g.cycles == w.cycles  # exact, not approx
        assert g.seconds == w.seconds
        assert dataclasses.asdict(g.cache) == dataclasses.asdict(w.cache)


def test_engine_identity_on_mini_suite(provider_workloads):
    """reference == vectorized == batched, per dispatch, per provider."""
    provider, workloads = provider_workloads
    for app, workload in workloads:
        ref, ref_sim = _run_engine(provider, app, workload, "reference")
        for engine in ("vectorized", "batched"):
            got, got_sim = _run_engine(provider, app, workload, engine)
            _assert_dispatches_identical(got, ref)
            assert dataclasses.asdict(got_sim.cache.stats) == (
                dataclasses.asdict(ref_sim.cache.stats)
            ), (provider.name, app.name, engine)
            assert (
                got_sim.total_simulated_instructions
                == ref_sim.total_simulated_instructions
            )


# -- 3. dispatch/timing sanity properties -------------------------------------


@provider_param
@settings(max_examples=40, deadline=None)
@given(
    cycles=st.floats(0.0, 1e12, allow_nan=False),
    n_bytes=st.floats(0.0, 1e12, allow_nan=False),
    threads=st.integers(1, 1 << 16),
)
def test_timing_cost_sanity(provider_name, cycles, n_bytes, threads):
    """Roofline decomposition: non-negative terms, exact total."""
    device = get_provider(provider_name).default_device
    cost = TimingModel(device).cost(cycles, n_bytes, threads)
    assert cost.compute_seconds >= 0
    assert cost.memory_seconds >= 0
    assert cost.launch_seconds == device.kernel_launch_overhead_s
    assert cost.total_seconds == (
        max(cost.compute_seconds, cost.memory_seconds) + cost.launch_seconds
    )
    assert cost.memory_bound == (cost.memory_seconds > cost.compute_seconds)


@provider_param
@settings(max_examples=40, deadline=None)
@given(
    cycles=st.floats(1.0, 1e12, allow_nan=False),
    n_bytes=st.floats(1.0, 1e12, allow_nan=False),
)
def test_frequency_scales_compute_only(provider_name, cycles, n_bytes):
    """Re-clocking reshapes the roofline the Figure-8 way: compute time
    scales with 1/frequency, memory time is off the GPU clock domain."""
    device = get_provider(provider_name).default_device
    threads = device.hardware_threads
    full = TimingModel(device).cost(cycles, n_bytes, threads)
    half = TimingModel(device.at_frequency(device.frequency_mhz / 2)).cost(
        cycles, n_bytes, threads
    )
    assert half.compute_seconds == pytest.approx(
        2 * full.compute_seconds, rel=1e-12
    )
    assert half.memory_seconds == full.memory_seconds


@provider_param
@settings(max_examples=30, deadline=None)
@given(
    gws=st.integers(1, 1 << 20),
    width_index=st.integers(0, 7),
    iters=st.integers(1, 12),
)
def test_dispatch_thread_mapping(provider_name, gws, width_index, iters):
    """Hardware-thread derivation honours the provider threading model,
    and dynamic totals scale exactly with the thread count."""
    provider = get_provider(provider_name)
    spec = provider.default_device
    widths = provider.capabilities.simd_compile_widths
    simd = widths[width_index % len(widths)]
    kernel = build_tiny_kernel(simd_width=simd)

    device = GPUDevice(spec)
    dispatch = device.execute(
        kernel, {"iters": float(iters), "n": float(gws)}, gws,
        np.random.default_rng(0),
    )
    items = spec.items_per_thread(simd)
    expected_threads = max(1, -(-gws // items))
    if spec.wavefront_width:
        assert items == spec.wavefront_width
    else:
        assert items == simd
    assert dispatch.n_hw_threads == expected_threads
    assert dispatch.instruction_count % expected_threads == 0
    assert dispatch.total_bytes == dispatch.bytes_read + dispatch.bytes_written
    assert dispatch.time_seconds > 0
    assert dispatch.spi > 0


# -- 4. per-provider goldens --------------------------------------------------


def _provider_snapshot(provider, workloads) -> dict:
    """Table I-style per-app statistics plus a detailed-sim prefix.

    Integer statistics (instructions, bytes, thread counts, cache
    counters) must match exactly; seconds match to 1e-6 relative.
    """
    apps = {}
    for app, workload in workloads:
        log = workload.log
        hw_threads = []
        for profile in log.invocations:
            binary = log.binaries[profile.kernel_name]
            items = provider.default_device.items_per_thread(
                binary.simd_width
            )
            hw_threads.append(max(1, -(-profile.global_work_size // items)))
        apps[app.name] = {
            "invocations": len(log.invocations),
            "total_instructions": int(log.total_instructions),
            "total_bytes": int(
                sum(p.total_bytes for p in log.invocations)
            ),
            "hw_threads_first": hw_threads[0],
            "hw_threads_max": max(hw_threads),
            "hw_threads_total": sum(hw_threads),
            "native_seconds": workload.timings.total_seconds,
        }

    # Detailed simulation of the first app's first invocations, on the
    # provider's own default cache geometry.
    first_app, first_workload = workloads[0]
    simulator = DetailedGPUSimulator(provider.default_device)
    rng = np.random.default_rng(0)
    sim_rows = []
    for profile in first_workload.log.invocations[:6]:
        binary = first_app.sources[profile.kernel_name].body
        env = {**dict(profile.data_items), **dict(profile.arg_items)}
        result = simulator.simulate(
            binary, env, profile.global_work_size, rng
        )
        sim_rows.append({
            "kernel": result.kernel_name,
            "instructions": result.instruction_count,
            "stepped": result.simulated_instructions,
            "cycles": result.cycles,
            "cache_accesses": result.cache.accesses,
            "cache_hits": result.cache.hits,
            "cache_misses": result.cache.misses,
        })
    return {
        "provider": provider.name,
        "device": provider.default_device.name,
        "wavefront_width": provider.default_device.wavefront_width,
        "cache_config": dataclasses.asdict(
            provider.cache_config(provider.default_device)
        ),
        "apps": apps,
        "detailed_sim_prefix": sim_rows,
    }


def test_provider_stats_match_golden(provider_workloads):
    provider, workloads = provider_workloads
    assert tuple(app.name for app, _ in workloads) == MINI_SUITE
    _check_golden(
        f"provider_{provider.name}",
        _provider_snapshot(provider, workloads),
    )
