"""repro.telemetry.histograms: log-bucketed histograms and their merge."""

import gc
import math
import tracemalloc

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import GROWTH, Histogram, bucket_index, bucket_midpoint
from repro.telemetry.snapshot import capture_snapshot, merge_snapshot


@pytest.fixture
def tm():
    registry = telemetry.enable()
    yield registry
    telemetry.disable()


# -- bucketing ---------------------------------------------------------------


def test_bucket_index_is_monotone_and_log_spaced():
    values = [1e-9, 1e-6, 0.001, 0.5, 1.0, 2.0, 1e3, 1e9]
    indices = [bucket_index(v) for v in values]
    assert indices == sorted(indices)
    # One growth step moves exactly one bucket.
    for v in (0.001, 1.0, 123.456):
        assert bucket_index(v * GROWTH * GROWTH) >= bucket_index(v) + 1


def test_bucket_midpoint_lies_inside_its_bucket():
    for v in (1e-6, 0.37, 1.0, 42.0, 9.9e7):
        idx = bucket_index(v)
        mid = bucket_midpoint(idx)
        assert GROWTH ** idx <= mid <= GROWTH ** (idx + 1) * (1 + 1e-12)


# -- observation and quantiles ----------------------------------------------


def test_count_and_sum_are_exact():
    h = Histogram("t", "s")
    values = [0.001, 0.002, 0.004, 1.5, 300.0, 0.0, -2.0]
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.total == pytest.approx(sum(values))
    assert h.minimum == -2.0
    assert h.maximum == 300.0
    assert h.zero_count == 2  # 0.0 and -2.0


def test_quantiles_are_bucket_accurate():
    h = Histogram("t", "s")
    values = list(np.linspace(0.01, 1.0, 1000))
    for v in values:
        h.observe(v)
    # Log buckets are ~19% wide, so quantile estimates land within one
    # growth step of the exact answer.
    for q in (0.50, 0.90, 0.99):
        exact = float(np.quantile(values, q))
        assert h.quantile(q) == pytest.approx(exact, rel=GROWTH - 1.0)
    pcts = h.percentiles()
    assert set(pcts) == {"p50", "p90", "p99", "max"}
    assert pcts["max"] == 1.0
    assert pcts["p50"] <= pcts["p90"] <= pcts["p99"] <= pcts["max"]


def test_quantile_clamps_to_observed_extremes():
    h = Histogram("t", "s")
    h.observe(5.0)
    assert h.quantile(0.5) == 5.0
    assert h.quantile(0.99) == 5.0


def test_zero_and_negative_values_land_in_the_zero_bucket():
    h = Histogram("t", "s")
    h.observe(-1.0)
    h.observe(0.0)
    h.observe(10.0)
    assert h.zero_count == 2
    assert h.quantile(0.5) == -1.0  # zero bucket reports the true minimum
    assert h.count == 3


def test_empty_histogram_is_well_defined():
    h = Histogram("t", "s")
    assert h.count == 0
    assert h.mean == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.percentiles()["max"] == 0.0


def test_observe_array_matches_scalar_observe():
    values = np.concatenate(
        [np.zeros(3), -np.ones(2), np.geomspace(1e-6, 1e6, 500)]
    )
    scalar, vector = Histogram("s", ""), Histogram("v", "")
    for v in values:
        scalar.observe(float(v))
    vector.observe_array(values)
    assert vector.count == scalar.count
    assert vector.total == pytest.approx(scalar.total)
    assert vector.zero_count == scalar.zero_count
    assert vector.minimum == scalar.minimum
    assert vector.maximum == scalar.maximum
    assert dict(vector.buckets) == dict(scalar.buckets)


# -- merge and snapshots -----------------------------------------------------


def test_merge_conserves_count_and_sum():
    rng = np.random.default_rng(0)
    parts = []
    for _ in range(5):
        h = Histogram("t", "s")
        h.observe_array(rng.lognormal(size=200))
        parts.append(h)
    merged = Histogram("t", "s")
    for part in parts:
        merged.merge(part.snapshot())
    assert merged.count == sum(p.count for p in parts)
    assert merged.total == pytest.approx(sum(p.total for p in parts))
    assert merged.minimum == min(p.minimum for p in parts)
    assert merged.maximum == max(p.maximum for p in parts)
    # Quantiles of the merge sit inside the overall value range.
    assert merged.minimum <= merged.quantile(0.5) <= merged.maximum


def test_merge_is_order_independent():
    a, b = Histogram("t", ""), Histogram("t", "")
    a.observe_array(np.geomspace(0.001, 10.0, 100))
    b.observe_array(np.geomspace(5.0, 5000.0, 77))
    ab, ba = Histogram("t", ""), Histogram("t", "")
    ab.merge(a.snapshot())
    ab.merge(b.snapshot())
    ba.merge(b.snapshot())
    ba.merge(a.snapshot())
    assert ab.count == ba.count
    assert ab.total == pytest.approx(ba.total)
    assert dict(ab.buckets) == dict(ba.buckets)
    assert ab.percentiles() == ba.percentiles()


def test_snapshot_roundtrip_through_registry_merge(tm):
    tm.observe_hist("demo.latency_seconds", 0.004, "s")
    tm.observe_hist("demo.latency_seconds", 0.016, "s")
    snap = capture_snapshot(tm)
    assert [h.name for h in snap.histograms] == ["demo.latency_seconds"]

    target = telemetry.Telemetry()
    merge_snapshot(target, snap)
    merge_snapshot(target, snap)
    merged = target.histogram("demo.latency_seconds")
    assert merged.count == 4
    assert merged.total == pytest.approx(2 * (0.004 + 0.016))
    assert merged.unit == "s"


def test_registry_histogram_identity_and_unit(tm):
    first = tm.histogram("h.bytes", "B")
    second = tm.histogram("h.bytes")
    assert first is second
    tm.observe_hist("h.bytes", 64.0)
    assert first.count == 1
    assert first.unit == "B"


# -- exemplars ---------------------------------------------------------------


def test_capture_exemplar_bounds_buckets_and_newest_wins():
    from repro.telemetry.histograms import MAX_EXEMPLARS

    h = Histogram("t.seconds", "s")
    h.capture_exemplar(1.0, span_id=1, trace_id="aa")
    h.capture_exemplar(1.0, span_id=2, trace_id="bb")  # same bucket
    (top,) = h.tail_exemplars()
    assert (top.span_id, top.trace_id) == (2, "bb")
    # Flood well-separated buckets: only the highest MAX_EXEMPLARS stay.
    for k in range(MAX_EXEMPLARS + 4):
        h.capture_exemplar(4.0 ** k, span_id=100 + k)
    kept = h.tail_exemplars()
    assert len(kept) == MAX_EXEMPLARS
    assert kept[0].value == 4.0 ** (MAX_EXEMPLARS + 3)  # highest first
    assert all(a.value > b.value for a, b in zip(kept, kept[1:]))
    h.capture_exemplar(0.0, span_id=9)  # non-positive: ignored
    assert len(h.tail_exemplars()) == MAX_EXEMPLARS


def test_registry_captures_exemplars_for_tail_observations(tm):
    with tm.span("slow.step") as span:
        tm.observe_hist("op.seconds", 10.0, "s")
        trace_id = span.trace_id
        span_id = span.span_id
    # A mid-distribution value (far under max/4) captures nothing...
    with tm.span("fast.step"):
        tm.observe_hist("op.seconds", 0.001, "s")
    # ...and without an open span, even a new maximum captures nothing.
    tm.observe_hist("op.seconds", 20.0, "s")
    exemplars = tm.histogram("op.seconds").tail_exemplars()
    assert [e.value for e in exemplars] == [10.0]
    assert exemplars[0].span_id == span_id
    assert exemplars[0].trace_id == trace_id


def test_exemplars_survive_snapshot_merge(tm):
    worker = telemetry.Telemetry()
    with worker.span("worker.step"):
        worker.observe_hist("op.seconds", 8.0, "s")
    with tm.span("parent.step"):
        tm.observe_hist("op.seconds", 2.0, "s")
    merge_snapshot(tm, capture_snapshot(worker))
    values = [e.value for e in tm.histogram("op.seconds").tail_exemplars()]
    assert 8.0 in values and 2.0 in values


# -- disabled fast path ------------------------------------------------------


def test_disabled_histogram_and_counter_ops_allocate_nothing():
    """The hot-loop contract: with telemetry off, guarded instrument
    sites retain zero memory (``tm.enabled`` is the only work done)."""
    telemetry.disable()
    tm = telemetry.get()
    assert not tm.enabled

    def loop() -> None:
        for _ in range(500):
            if tm.enabled:  # the guard every hot-path site uses
                tm.inc("never")
                tm.observe_hist("never.seconds", 1.0, "s")
                tm.histogram("never.seconds").observe(1.0)
            tm.inc("noop")  # unguarded no-op calls retain nothing either
            tm.observe_hist("noop.seconds", 1.0, "s")
            # A tail-bucket value would capture an exemplar when
            # enabled; disabled it must retain nothing either.
            tm.observe_hist("noop.seconds", 1e6, "s")

    loop()  # warm up method caches outside the measurement
    gc.collect()
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    loop()
    gc.collect()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    # Attribute retained memory by allocation site: nothing may stick to
    # the telemetry modules.  (A plain global before/after delta would
    # pick up unrelated interpreter/test-harness allocations.)
    offenders = [
        stat
        for stat in after.compare_to(before, "filename")
        if stat.size_diff > 0
        and "telemetry" in stat.traceback[0].filename
    ]
    assert not offenders, [str(s) for s in offenders]


def test_histogram_math_survives_extreme_magnitudes():
    h = Histogram("t", "")
    for v in (1e-300, 1e300, 1.0):
        h.observe(v)
    assert h.count == 3
    assert math.isfinite(h.quantile(0.5))
    assert h.maximum == 1e300


# -- exact percentile extremes -----------------------------------------------


def test_percentile_extremes_are_exact_observed_min_max():
    """p0/p100 are the tracked extremes, never a bucket midpoint."""
    h = Histogram("t", "s")
    values = [0.0012, 0.37, 5.2, 19.0]
    for v in values:
        h.observe(v)
    assert h.quantile(0.0) == min(values)
    assert h.quantile(1.0) == max(values)
    assert h.percentile(0) == min(values)
    assert h.percentile(100) == max(values)
    # The extremes are exact even though bucket estimation is not:
    # 19.0's bucket midpoint lands elsewhere in the log bucket.
    assert bucket_midpoint(bucket_index(19.0)) != 19.0
    # Interior percentiles are delegated to quantile().
    assert h.percentile(50) == h.quantile(0.5)


def test_percentile_extremes_survive_merge():
    a = Histogram("t", "s")
    b = Histogram("t", "s")
    a.observe(3.0)
    b.observe(0.25)
    b.observe(40.0)
    a.merge(b.snapshot())
    assert a.percentile(0) == 0.25
    assert a.percentile(100) == 40.0


def test_percentile_validates_range_and_handles_empty():
    h = Histogram("t", "s")
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 0.0
    with pytest.raises(ValueError, match="percentile"):
        h.percentile(-1)
    with pytest.raises(ValueError, match="percentile"):
        h.percentile(100.5)
    with pytest.raises(ValueError, match="quantile"):
        h.quantile(1.5)
