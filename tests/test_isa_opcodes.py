"""Opcode classification and metadata."""

import pytest

from repro.isa.opcodes import (
    FIGURE_4A_ORDER,
    OPCODES_BY_CLASS,
    OpClass,
    Opcode,
    opcode_from_mnemonic,
)


def test_every_opcode_has_a_class():
    for opcode in Opcode:
        assert isinstance(opcode.op_class, OpClass)


def test_classes_partition_opcodes():
    seen = set()
    for opcodes in OPCODES_BY_CLASS.values():
        for op in opcodes:
            assert op not in seen, f"{op} appears in two classes"
            seen.add(op)
    assert seen == set(Opcode)


def test_figure_4a_order_covers_all_classes():
    assert set(FIGURE_4A_ORDER) == set(OpClass)
    assert len(FIGURE_4A_ORDER) == 5


def test_send_opcodes():
    assert Opcode.SEND.is_send
    assert Opcode.SENDC.is_send
    assert not Opcode.ADD.is_send
    assert Opcode.SEND.op_class is OpClass.SEND


def test_control_opcodes():
    assert Opcode.JMPI.is_control
    assert Opcode.WHILE.is_control
    assert not Opcode.MOV.is_control


def test_mov_is_move_class():
    assert Opcode.MOV.op_class is OpClass.MOVE
    assert Opcode.SEL.op_class is OpClass.MOVE


def test_logic_examples():
    for op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.CMP):
        assert op.op_class is OpClass.LOGIC


def test_computation_includes_extended_math():
    assert Opcode.MATH_SQRT.op_class is OpClass.COMPUTATION
    assert Opcode.MAD.op_class is OpClass.COMPUTATION


def test_issue_cycles_positive_and_ordered():
    for opcode in Opcode:
        assert opcode.issue_cycles >= 1
    # Extended math is slower than simple ALU; sends slower than moves.
    assert Opcode.MATH_SIN.issue_cycles > Opcode.ADD.issue_cycles
    assert Opcode.SEND.issue_cycles > Opcode.MOV.issue_cycles


def test_opcode_from_mnemonic_roundtrip():
    for opcode in Opcode:
        assert opcode_from_mnemonic(opcode.value) is opcode


def test_opcode_from_mnemonic_unknown():
    with pytest.raises(KeyError, match="unknown GEN mnemonic"):
        opcode_from_mnemonic("frobnicate")
