"""Unit tests for the Figure 5-8 text renderers."""

import pytest

from repro.analysis.render import (
    figure5_config_space,
    figure6_error_minimizing,
    figure7_cooptimization,
    figure8_validation,
)
from repro.sampling.explorer import (
    ConfigResult,
    ExplorationResult,
    ThresholdSweepPoint,
)
from repro.sampling.features import FeatureKind
from repro.sampling.intervals import Interval, IntervalScheme
from repro.sampling.selection import (
    SelectedInterval,
    Selection,
    SelectionConfig,
)
from repro.sampling.validation import ValidationPoint, ValidationReport


def _result(scheme=IntervalScheme.SYNC, feature=FeatureKind.BB, error=1.5):
    selection = Selection(
        config=SelectionConfig(scheme, feature),
        selected=(
            SelectedInterval(
                interval=Interval(
                    index=0, start=0, stop=5, instruction_count=1000
                ),
                ratio=1.0,
            ),
        ),
        total_instructions=10_000,
        n_intervals=20,
        total_invocations=100,
    )
    return ConfigResult(selection=selection, error_percent=error)


def _exploration():
    results = {
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB): _result(),
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.KN): _result(
            feature=FeatureKind.KN, error=3.0
        ),
    }
    return ExplorationResult(
        application_name="fake-app",
        results=results,
        total_instructions=10_000,
    )


def test_figure5_lists_configs_per_app():
    text = figure5_config_space([_exploration()])
    assert "fake-app" in text
    assert "Sync-BB" in text and "Sync-KN" in text
    assert "1.50%" in text and "3.00%" in text


def test_figure6_includes_average():
    text = figure6_error_minimizing(
        [("app-a", _result(error=1.0)), ("app-b", _result(error=3.0))]
    )
    assert "AVERAGE" in text
    assert "2.000%" in text  # mean of 1 and 3
    assert "10.0x" in text  # speedup of the fake selection


def test_figure7_renders_thresholds():
    points = [
        ThresholdSweepPoint(None, 0.3, 35.0),
        ThresholdSweepPoint(3.0, 1.2, 120.0),
        ThresholdSweepPoint(10.0, 3.0, 223.0),
    ]
    text = figure7_cooptimization(points)
    assert "min-error" in text
    assert "<= 3%" in text
    assert "223x" in text


def test_figure8_renders_conditions():
    report = ValidationReport(
        application_name="fake-app",
        selection_label="Sync-BB",
        points=(
            ValidationPoint("trial seed 2", 0.9),
            ValidationPoint("850MHz", 2.4),
        ),
    )
    text = figure8_validation("Figure 8 test", [report])
    assert "Figure 8 test" in text
    assert "trial seed 2" in text
    assert "2.40%" in text


def test_validation_report_statistics():
    report = ValidationReport(
        application_name="a",
        selection_label="s",
        points=(
            ValidationPoint("x", 1.0),
            ValidationPoint("y", 5.0),
        ),
    )
    assert report.max_error_percent == 5.0
    assert report.mean_error_percent == 3.0
    assert report.fraction_below(2.0) == 0.5


def test_exploration_getitem():
    ex = _exploration()
    config = SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB)
    assert ex[config].error_percent == 1.5
    with pytest.raises(KeyError):
        ex[SelectionConfig(IntervalScheme.SINGLE_KERNEL, FeatureKind.BB)]
