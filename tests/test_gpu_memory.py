"""Synthetic address-stream expansion."""

import numpy as np
import pytest

from repro.gpu.memory import DEFAULT_SURFACE, Surface, expand_addresses, stream_bytes
from repro.isa.instruction import AccessPattern, MemoryDirection, SendMessage


def _msg(pattern=AccessPattern.SEQUENTIAL, bpc=4, stride=1):
    return SendMessage(
        direction=MemoryDirection.READ,
        bytes_per_channel=bpc,
        pattern=pattern,
        stride=stride,
    )


def test_surface_validation():
    with pytest.raises(ValueError):
        Surface(base_address=0, size_bytes=0)
    with pytest.raises(ValueError):
        Surface(base_address=-1, size_bytes=64)


def test_sequential_is_unit_stride():
    addrs = expand_addresses(_msg(), exec_size=4, n_executions=2)
    diffs = np.diff(addrs)
    assert (diffs == 4).all()
    assert addrs[0] == DEFAULT_SURFACE.base_address


def test_sequential_continues_across_expansions():
    first = expand_addresses(_msg(), 4, 2, start_execution=0)
    second = expand_addresses(_msg(), 4, 2, start_execution=2)
    assert second[0] == first[-1] + 4


def test_strided_pattern():
    addrs = expand_addresses(
        _msg(pattern=AccessPattern.STRIDED, stride=8), 2, 2
    )
    assert (np.diff(addrs) == 8 * 4).all()


def test_broadcast_single_address_per_execution():
    addrs = expand_addresses(
        _msg(pattern=AccessPattern.BROADCAST), exec_size=16, n_executions=5
    )
    assert addrs.shape == (5,)
    assert (addrs == DEFAULT_SURFACE.base_address).all()


def test_random_within_surface():
    surface = Surface(base_address=0x1000, size_bytes=4096)
    addrs = expand_addresses(
        _msg(pattern=AccessPattern.RANDOM), 8, 100, surface,
        rng=np.random.default_rng(0),
    )
    assert (addrs >= surface.base_address).all()
    assert (addrs < surface.base_address + surface.size_bytes).all()


def test_random_is_seeded():
    a = expand_addresses(
        _msg(pattern=AccessPattern.RANDOM), 8, 10,
        rng=np.random.default_rng(7),
    )
    b = expand_addresses(
        _msg(pattern=AccessPattern.RANDOM), 8, 10,
        rng=np.random.default_rng(7),
    )
    np.testing.assert_array_equal(a, b)


def test_addresses_wrap_at_surface_end():
    surface = Surface(base_address=0, size_bytes=64)
    addrs = expand_addresses(_msg(bpc=4), 4, 10, surface)
    assert addrs.max() < 64


def test_zero_executions():
    assert expand_addresses(_msg(), 8, 0).size == 0


def test_negative_executions_rejected():
    with pytest.raises(ValueError):
        expand_addresses(_msg(), 8, -1)


def test_stream_bytes():
    assert stream_bytes(_msg(bpc=4), exec_size=16, n_executions=10) == 640
