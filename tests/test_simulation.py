"""Detailed and sampled simulation."""

import numpy as np
import pytest

from repro.gpu.cache import CacheConfig
from repro.gpu.device import HD4000, HD4600
from repro.sampling.pipeline import select_simpoints
from repro.sampling.simpoint import SimPointOptions
from repro.simulation.detailed import DetailedGPUSimulator
from repro.simulation.sampled import (
    sampled_vs_full_error_percent,
    simulate_full,
    simulate_selection,
)

from conftest import build_tiny_kernel

FAST_OPTIONS = SimPointOptions(max_k=6, restarts=1, max_iterations=40)


def _simulate(kernel, gws=64, iters=3.0, device=HD4000, seed=0):
    simulator = DetailedGPUSimulator(device, CacheConfig(size_bytes=64 * 1024))
    return simulator.simulate(
        kernel, {"iters": iters, "n": float(gws)}, gws,
        np.random.default_rng(seed),
    ), simulator


def test_detailed_steps_every_instruction():
    kernel = build_tiny_kernel()
    result, simulator = _simulate(kernel)
    # One representative thread is stepped instruction-by-instruction.
    per_thread = result.instruction_count // result.simulated_instructions
    assert result.simulated_instructions > 0
    assert per_thread >= 1
    assert simulator.total_simulated_instructions == result.simulated_instructions


def test_detailed_cycles_and_seconds_positive():
    result, _ = _simulate(build_tiny_kernel())
    assert result.cycles > 0
    assert result.seconds > 0
    assert result.spi > 0


def test_detailed_cache_observes_accesses():
    result, simulator = _simulate(build_tiny_kernel(), iters=20.0)
    assert simulator.cache.stats.accesses > 0


def test_detailed_more_iters_more_cycles():
    few, _ = _simulate(build_tiny_kernel(), iters=2.0)
    many, _ = _simulate(build_tiny_kernel(), iters=20.0)
    assert many.cycles > few.cycles


def test_detailed_faster_on_more_eus():
    ivy, _ = _simulate(build_tiny_kernel(), gws=4096, device=HD4000)
    haswell, _ = _simulate(build_tiny_kernel(), gws=4096, device=HD4600)
    assert haswell.seconds < ivy.seconds


def test_sampled_simulation_speedup_and_accuracy(small_workload, small_app):
    result = select_simpoints(small_workload, options=FAST_OPTIONS)
    selection = result.selection
    cache = CacheConfig(size_bytes=64 * 1024)
    sampled = simulate_selection(
        small_app.name,
        small_app.sources,
        small_workload.log,
        selection,
        HD4000,
        cache,
    )
    full = simulate_full(
        small_app.name, small_app.sources, small_workload.log, HD4000, cache
    )
    # The sampled run skips most instructions...
    assert sampled.simulated_instructions < full.simulated_instructions
    assert sampled.instruction_speedup > 1.5
    # The simulator re-resolves data-dependent trip counts with its own
    # RNG, so counts differ slightly from the profile's.
    assert sampled.instruction_speedup == pytest.approx(
        selection.simulation_speedup, rel=0.2
    )
    # ...and still predicts the simulator's own whole-program SPI well.
    error = sampled_vs_full_error_percent(sampled, full)
    assert error < 20.0


def test_dispatch_cache_stats_are_per_dispatch_deltas():
    """Regression: ``SimulatedDispatch.cache`` must cover only that
    dispatch, not the simulator's lifetime-cumulative stats."""
    kernel = build_tiny_kernel()
    simulator = DetailedGPUSimulator(
        HD4000, CacheConfig(size_bytes=64 * 1024)
    )
    rng = np.random.default_rng(0)
    first = simulator.simulate(kernel, {"iters": 10.0, "n": 64.0}, 64, rng)
    second = simulator.simulate(kernel, {"iters": 10.0, "n": 64.0}, 64, rng)
    # Each dispatch issues the same number of accesses; a cumulative
    # second result would report twice as many.
    assert second.cache.accesses == first.cache.accesses
    # The deltas sum to the lifetime totals.
    lifetime = simulator.cache.stats
    assert first.cache.accesses + second.cache.accesses == lifetime.accesses
    assert first.cache.hits + second.cache.hits == lifetime.hits
    assert first.cache.misses + second.cache.misses == lifetime.misses


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_dispatch_cache_delta_both_engines(engine):
    kernel = build_tiny_kernel()
    simulator = DetailedGPUSimulator(
        HD4000, CacheConfig(size_bytes=64 * 1024), engine=engine
    )
    rng = np.random.default_rng(0)
    results = [
        simulator.simulate(kernel, {"iters": 8.0, "n": 64.0}, 64, rng)
        for _ in range(3)
    ]
    assert sum(r.cache.accesses for r in results) == simulator.cache.stats.accesses
    assert sum(r.cache.misses for r in results) == simulator.cache.stats.misses


def test_simulate_selection_engine_parameter(small_workload, small_app):
    """`engine=` threads through the sampled entry points unchanged."""
    result = select_simpoints(small_workload, options=FAST_OPTIONS)
    cache = CacheConfig(size_bytes=64 * 1024)
    by_engine = {
        engine: simulate_selection(
            small_app.name, small_app.sources, small_workload.log,
            result.selection, HD4000, cache, engine=engine,
        )
        for engine in ("reference", "vectorized")
    }
    ref, vec = by_engine["reference"], by_engine["vectorized"]
    assert vec.projected_spi == ref.projected_spi
    assert vec.simulated_instructions == ref.simulated_instructions
    assert vec.fast_forwarded_instructions == ref.fast_forwarded_instructions


def test_microkernels_engine_parameter(small_workload, small_app):
    from repro.simulation.microkernels import simulate_selection_microkernels

    result = select_simpoints(small_workload, options=FAST_OPTIONS)
    outcomes = {
        engine: simulate_selection_microkernels(
            small_app.name, small_app.sources, small_workload.log,
            result.selection, HD4000, loop_reduction=2.0, engine=engine,
        )
        for engine in ("reference", "vectorized")
    }
    assert (
        outcomes["vectorized"].projected_spi
        == outcomes["reference"].projected_spi
    )
    assert (
        outcomes["vectorized"].stepped_instructions
        == outcomes["reference"].stepped_instructions
    )


def test_sampled_fast_forward_accounting(small_workload, small_app):
    result = select_simpoints(small_workload, options=FAST_OPTIONS)
    sampled = simulate_selection(
        small_app.name,
        small_app.sources,
        small_workload.log,
        result.selection,
        HD4000,
    )
    total = (
        sampled.simulated_instructions + sampled.fast_forwarded_instructions
    )
    assert total == pytest.approx(small_workload.log.total_instructions, rel=0.02)
