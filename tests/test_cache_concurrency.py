"""Multi-tenant ProfileCache: cross-process races, eviction, tmp leaks.

The cache directory is shared state between the ``gtpin serve`` daemon
and any number of CLI processes, so the properties here are the
contract that makes that safe: concurrent store/load on the same key
never yields a corrupt read (atomic replace, last writer wins),
eviction never snatches data out from under an active reader (POSIX
unlink semantics), and crashed stores cannot grow the directory
forever (the age-gated ``.profile-*.tmp`` sweep).

Payloads are plain dicts -- the cache pickles any object, and small
payloads keep the two-process hammering rounds fast.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro import telemetry
from repro.parallel.cache import (
    MAX_AGE_ENV,
    MAX_MB_ENV,
    ProfileCache,
    TMP_SWEEP_AGE_SECONDS,
)

ROUNDS = 25


# -- cross-process store/load races ------------------------------------------
# (worker functions live at module level so any start method can import
# them; the default context is fine on Linux and macOS alike)


def _hammer_same_key(root: str, writer: int, rounds: int, out) -> None:
    """Store/load loop on one shared key; reports malformed reads."""
    cache = ProfileCache(root)
    bad = 0
    for round_no in range(rounds):
        cache.store("shared", {"writer": writer, "round": round_no})
        value = cache.load("shared")
        # A read may see either writer's latest value -- but never a
        # torn/corrupt one, and never a shape we didn't write.
        if value is None or set(value) != {"writer", "round"}:
            bad += 1
    out.put((writer, bad))


def _store_own_keys(root: str, writer: int, count: int, out) -> None:
    cache = ProfileCache(root)
    for index in range(count):
        cache.store(f"w{writer}-k{index}", {"writer": writer, "i": index})
    out.put((writer, count))


def test_two_processes_racing_one_key_never_corrupt(tmp_path):
    root = str(tmp_path / "cache")
    out: multiprocessing.Queue = multiprocessing.Queue()
    procs = [
        multiprocessing.Process(
            target=_hammer_same_key, args=(root, writer, ROUNDS, out)
        )
        for writer in (1, 2)
    ]
    for proc in procs:
        proc.start()
    reports = [out.get(timeout=60.0) for _ in procs]
    for proc in procs:
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
    assert sorted(writer for writer, _ in reports) == [1, 2]
    assert all(bad == 0 for _, bad in reports), reports
    # Last writer wins: the surviving entry is one writer's final round.
    cache = ProfileCache(root)
    final = cache.load("shared")
    assert final is not None
    assert final["round"] == ROUNDS - 1
    assert final["writer"] in (1, 2)
    assert len(cache) == 1


def test_two_processes_on_distinct_keys_all_entries_land(tmp_path):
    root = str(tmp_path / "cache")
    out: multiprocessing.Queue = multiprocessing.Queue()
    procs = [
        multiprocessing.Process(
            target=_store_own_keys, args=(root, writer, 5, out)
        )
        for writer in (1, 2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60.0)
        assert proc.exitcode == 0
    cache = ProfileCache(root)
    assert len(cache) == 10
    for writer in (1, 2):
        for index in range(5):
            value = cache.load(f"w{writer}-k{index}")
            assert value == {"writer": writer, "i": index}
    stats = cache.stats()
    assert stats["entries"] == 10
    assert stats["bytes"] > 0


# -- eviction ----------------------------------------------------------------


def test_eviction_never_breaks_an_active_reader(tmp_path):
    """An entry evicted mid-read stays readable through the already-open
    descriptor (POSIX unlink semantics): the path disappears, the data
    does not."""
    cache = ProfileCache(tmp_path, max_age_seconds=0.05)
    cache.store("victim", {"payload": list(range(100))})
    path = cache.path_for("victim")
    with open(path, "rb") as reader:
        time.sleep(0.1)
        removed = cache.evict()
        assert removed == 1
        assert not path.exists()
        # The reader's descriptor still sees the full entry.
        assert pickle.load(reader) == {"payload": list(range(100))}
    assert cache.load("victim") is None  # subsequent opens miss


def test_store_evicts_by_size_but_never_its_own_entry(tmp_path):
    cache = ProfileCache(tmp_path, max_bytes=1)
    cache.store("first", {"blob": "x" * 1000})
    assert len(cache) == 1  # over budget, but the new entry is protected
    time.sleep(0.02)  # distinct mtimes so eviction order is stable
    with telemetry.session() as tm:
        cache.store("second", {"blob": "y" * 1000})
        assert tm.counter_value("sampling.profile_cache.evictions") == 1
    assert len(cache) == 1
    assert cache.load("first") is None
    assert cache.load("second") == {"blob": "y" * 1000}


def test_age_eviction_expires_old_entries(tmp_path):
    cache = ProfileCache(tmp_path, max_age_seconds=0.05)
    cache.store("old", {"n": 1})
    time.sleep(0.1)
    cache.store("new", {"n": 2})
    assert cache.load("old") is None
    assert cache.load("new") == {"n": 2}
    assert len(cache) == 1


def test_read_touch_protects_hot_entries_from_lru_eviction(tmp_path):
    entry = {"blob": "x" * 500}
    size = len(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
    cache = ProfileCache(tmp_path, max_bytes=2 * size + 16)
    cache.store("a", entry)
    time.sleep(0.02)
    cache.store("b", entry)
    time.sleep(0.02)
    assert cache.load("a") is not None  # touch: "a" is now most recent
    time.sleep(0.02)
    cache.store("c", entry)  # budget forces one eviction: "b", not "a"
    assert cache.load("b") is None
    assert cache.load("a") is not None
    assert cache.load("c") is not None


def test_env_budgets_configure_the_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(MAX_MB_ENV, "2")
    monkeypatch.setenv(MAX_AGE_ENV, "3600")
    cache = ProfileCache(tmp_path)
    assert cache.max_bytes == 2 * 1024 * 1024
    assert cache.max_age_seconds == 3600.0
    monkeypatch.setenv(MAX_MB_ENV, "nope")
    with pytest.raises(ValueError):
        ProfileCache(tmp_path)


# -- tmp-file leak regression (the store() satellite) ------------------------


def _orphan_tmp(root, name: str, age_seconds: float):
    root.mkdir(parents=True, exist_ok=True)
    path = root / name
    path.write_bytes(b"half-written profile")
    stamp = time.time() - age_seconds
    os.utime(path, (stamp, stamp))
    return path


def test_init_sweeps_only_stale_tmp_droppings(tmp_path):
    root = tmp_path / "cache"
    old = _orphan_tmp(root, ".profile-dead.tmp", TMP_SWEEP_AGE_SECONDS + 60)
    fresh = _orphan_tmp(root, ".profile-live.tmp", 0.0)
    with telemetry.session() as tm:
        cache = ProfileCache(root)
        assert tm.counter_value("sampling.profile_cache.tmp_swept") == 1
    assert not old.exists()  # crashed-store leak reclaimed
    assert fresh.exists()  # in-flight store spared
    assert len(cache) == 0  # droppings were never entries


def test_clear_sweeps_every_tmp_dropping_unconditionally(tmp_path):
    root = tmp_path / "cache"
    cache = ProfileCache(root)
    cache.store("real", {"n": 1})
    fresh = _orphan_tmp(root, ".profile-live.tmp", 0.0)
    assert cache.clear() == 1  # one *entry* removed...
    assert not fresh.exists()  # ...and the fresh dropping went too
    assert len(cache) == 0


def test_failed_store_leaves_no_tmp_dropping(tmp_path):
    cache = ProfileCache(tmp_path)
    with pytest.raises(Exception):
        cache.store("bad", lambda: None)  # lambdas don't pickle
    assert list(tmp_path.glob(".profile-*.tmp")) == []
    assert len(cache) == 0


def test_len_and_stats_count_only_real_entries(tmp_path):
    cache = ProfileCache(tmp_path)
    cache.store("one", {"n": 1})
    _orphan_tmp(tmp_path, ".profile-noise.tmp", 0.0)
    (tmp_path / ".lock").touch()
    assert len(cache) == 1
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["bytes"] == cache.path_for("one").stat().st_size


def test_load_miss_does_not_create_the_cache_directory(tmp_path):
    root = tmp_path / "never-created"
    cache = ProfileCache(root)
    with telemetry.session() as tm:
        assert cache.load("nothing") is None
        assert tm.counter_value("sampling.profile_cache.misses") == 1
    assert not root.exists()
