"""LuxMark-style device scoring (Section V-E's yardstick)."""

import pytest

from repro.gpu.device import HD4000, HD4600
from repro.workloads.luxmark import luxmark_scenes, run_luxmark


def test_three_scenes():
    scenes = luxmark_scenes()
    assert len(scenes) == 3
    names = [s.name for s in scenes]
    assert names == ["luxmark-luxball", "luxmark-microphone", "luxmark-hotel"]


def test_scenes_are_deterministic():
    a = luxmark_scenes(seed=1)
    b = luxmark_scenes(seed=1)
    assert [len(s.host_program) for s in a] == [
        len(s.host_program) for s in b
    ]


@pytest.fixture(scope="module")
def scores():
    return run_luxmark(HD4000), run_luxmark(HD4600)


def test_hd4000_score_near_paper(scores):
    """Paper: LuxMark scores 269 on the HD 4000."""
    ivy, _ = scores
    assert 240 <= ivy.score <= 300


def test_hd4600_beats_hd4000(scores):
    """Paper: 351 vs 269 -- 'demonstrating the performance increases
    due to parallelism on the HD4600'."""
    ivy, haswell = scores
    assert haswell.score > ivy.score
    ratio = haswell.score / ivy.score
    # Paper ratio 351/269 = 1.30; ours must land in that neighbourhood.
    assert 1.15 <= ratio <= 1.45


def test_per_scene_rates_positive(scores):
    ivy, _ = scores
    assert len(ivy.per_scene_samples_per_second) == 3
    assert all(v > 0 for v in ivy.per_scene_samples_per_second.values())


def test_score_is_seeded(scores):
    ivy, _ = scores
    again = run_luxmark(HD4000)
    assert again.score == pytest.approx(ivy.score)
