"""Interval division: the Table II schemes and their hard constraints."""

import pytest

from repro.sampling.intervals import (
    Interval,
    IntervalScheme,
    approx_instruction_intervals,
    divide,
    interval_space_summary,
    single_kernel_intervals,
    sync_intervals,
)


@pytest.fixture(scope="module")
def log(small_workload):
    return small_workload.log


def _assert_partition(intervals, log):
    """Intervals tile the invocation log exactly, in order."""
    assert intervals[0].start == 0
    assert intervals[-1].stop == len(log.invocations)
    for prev, cur in zip(intervals, intervals[1:]):
        assert cur.start == prev.stop
    for i, interval in enumerate(intervals):
        assert interval.index == i


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval(index=0, start=3, stop=3, instruction_count=1)
    with pytest.raises(ValueError):
        Interval(index=0, start=-1, stop=2, instruction_count=1)


def test_sync_intervals_partition(log):
    _assert_partition(sync_intervals(log), log)


def test_sync_intervals_respect_epochs(log):
    """No interval spans a synchronization call."""
    for interval in sync_intervals(log):
        epochs = {
            log.invocations[i].sync_epoch
            for i in interval.invocation_indices()
        }
        assert len(epochs) == 1


def test_approx_intervals_partition(log):
    _assert_partition(approx_instruction_intervals(log, 200_000), log)


def test_approx_intervals_respect_sync_boundaries(log):
    for interval in approx_instruction_intervals(log, 10**12):
        epochs = {
            log.invocations[i].sync_epoch
            for i in interval.invocation_indices()
        }
        assert len(epochs) == 1


def test_approx_intervals_near_target(log):
    target = 200_000
    intervals = approx_instruction_intervals(log, target)
    # Multi-invocation intervals only close once they reach the target, so
    # they are at least target-sized minus their last invocation; they are
    # "approximately" target and never split an invocation.
    for interval in intervals:
        if interval.n_invocations > 1:
            last = log.invocations[interval.stop - 1].instruction_count
            assert interval.instruction_count >= target or last > 0


def test_approx_smaller_target_makes_more_intervals(log):
    coarse = approx_instruction_intervals(log, 10**9)
    fine = approx_instruction_intervals(log, 5_000)
    assert len(fine) > len(coarse)


def test_approx_target_validation(log):
    with pytest.raises(ValueError):
        approx_instruction_intervals(log, 0)


def test_single_kernel_intervals(log):
    intervals = single_kernel_intervals(log)
    assert len(intervals) == len(log.invocations)
    _assert_partition(intervals, log)
    for i, interval in enumerate(intervals):
        assert interval.n_invocations == 1
        assert (
            interval.instruction_count
            == log.invocations[i].instruction_count
        )


def test_scheme_ordering(log):
    """Sync intervals are the largest division, single-kernel the smallest."""
    n_sync = len(divide(log, IntervalScheme.SYNC))
    n_approx = len(divide(log, IntervalScheme.APPROX_100M, 200_000))
    n_single = len(divide(log, IntervalScheme.SINGLE_KERNEL))
    assert n_sync <= n_approx <= n_single


def test_interval_weights_sum_to_total(log):
    for scheme in IntervalScheme:
        intervals = divide(log, scheme, 200_000)
        assert (
            sum(iv.instruction_count for iv in intervals)
            == log.total_instructions
        )


def test_interval_space_summary(log):
    rows = interval_space_summary([log, log], 200_000)
    assert len(rows) == 3
    assert rows[0].scheme is IntervalScheme.SYNC
    for row in rows:
        assert row.min_intervals <= row.avg_intervals <= row.max_intervals


def test_divide_empty_log_raises(small_workload):
    import dataclasses

    empty = dataclasses.replace(small_workload.log, invocations=())
    with pytest.raises(ValueError, match="empty"):
        divide(empty, IntervalScheme.SYNC)
