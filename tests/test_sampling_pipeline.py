"""End-to-end pipeline: profile_workload / select_simpoints / explore."""

import pytest

from repro.gpu.device import HD4000
from repro.sampling.features import FeatureKind
from repro.sampling.intervals import IntervalScheme
from repro.sampling.pipeline import (
    explore_application,
    profile_workload,
    select_simpoints,
)
from repro.sampling.simpoint import SimPointOptions

FAST_OPTIONS = SimPointOptions(max_k=6, restarts=1, max_iterations=40)


def test_profile_workload_aligns_log_and_timings(small_workload):
    assert len(small_workload.log.invocations) == len(small_workload.timings)
    for profile, timing in zip(
        small_workload.log, small_workload.timings
    ):
        assert profile.kernel_name == timing.kernel_name
        assert profile.index == timing.index


def test_profile_workload_records_device(small_workload):
    assert small_workload.device is HD4000
    assert small_workload.recording.call_count > 0


def test_select_simpoints_defaults(small_workload):
    result = select_simpoints(small_workload, options=FAST_OPTIONS)
    assert result.config.label == "Sync-BB"
    assert result.selection.k >= 1
    assert result.error_percent < 25  # sane, not a wild projection


def test_select_simpoints_other_config(small_workload):
    result = select_simpoints(
        small_workload,
        scheme=IntervalScheme.SINGLE_KERNEL,
        feature=FeatureKind.KN_GWS,
        options=FAST_OPTIONS,
    )
    assert result.config.label == "Single-KN-GWS"


def test_explore_application(small_workload):
    exploration = explore_application(
        small_workload, options=FAST_OPTIONS, approx_size=200_000
    )
    assert len(exploration.results) == 30
    assert exploration.total_instructions == small_workload.log.total_instructions


def test_pipeline_deterministic(small_app):
    a = profile_workload(small_app, trial_seed=5)
    b = profile_workload(small_app, trial_seed=5)
    assert a.log.total_instructions == b.log.total_instructions
    ra = select_simpoints(a, options=FAST_OPTIONS)
    rb = select_simpoints(b, options=FAST_OPTIONS)
    assert ra.error_percent == pytest.approx(rb.error_percent)
    assert [s.interval.index for s in ra.selection.selected] == [
        s.interval.index for s in rb.selection.selected
    ]
