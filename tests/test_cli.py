"""Command-line interface."""

import pytest

from repro.cli import main


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "cb-vision-facedetect" in out


def test_profile_command(capsys):
    assert main(["profile", "cb-gaussian-image", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "Figure 4c" in out


def test_select_command(capsys):
    assert main(
        [
            "select", "cb-gaussian-buffer",
            "--scale", "0.5",
            "--scheme", "sync",
            "--feature", "BB",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "Selected simulation points" in out
    assert "Simulation speedup" in out


def test_select_on_hd4600(capsys):
    assert main(
        ["select", "cb-gaussian-image", "--scale", "0.5",
         "--device", "hd4600"]
    ) == 0
    assert "Error (Eq. 1)" in capsys.readouterr().out


def test_overhead_command(capsys):
    assert main(["overhead", "cb-gaussian-image", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "Overhead factor" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["profile", "not-an-app"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_export_command(tmp_path, capsys):
    assert main(
        [
            "export", "cb-gaussian-image",
            "--scale", "0.5",
            "--out", str(tmp_path),
        ]
    ) == 0
    stem = "cb-gaussian-image.Sync-BB"
    for suffix in (".selection.json", ".bb", ".simpoints", ".weights"):
        assert (tmp_path / f"{stem}{suffix}").exists()
    out = capsys.readouterr().out
    assert "simulation points" in out


def test_exported_selection_loads_back(tmp_path):
    from repro.sampling.serialize import selection_from_json

    main(["export", "cb-gaussian-image", "--scale", "0.5",
          "--out", str(tmp_path)])
    text = (tmp_path / "cb-gaussian-image.Sync-BB.selection.json").read_text()
    selection = selection_from_json(text)
    assert selection.config.label == "Sync-BB"
    assert selection.k >= 1


def test_disasm_command(capsys):
    assert main(["disasm", "cb-gaussian-image", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "kernel cb-gaussian-image.k0" in out
    assert "[gtpin]" not in out


def test_disasm_instrumented(capsys):
    assert main(
        ["disasm", "cb-gaussian-image", "--scale", "0.5", "--instrumented"]
    ) == 0
    out = capsys.readouterr().out
    assert "[gtpin]" in out


def test_disasm_unknown_kernel(capsys):
    assert main(
        ["disasm", "cb-gaussian-image", "--scale", "0.5",
         "--kernel", "nope"]
    ) == 1
    assert "unknown kernel" in capsys.readouterr().out
