"""Command-line interface."""

import json

import pytest

from repro import telemetry
from repro.cli import main


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "cb-vision-facedetect" in out


def test_profile_command(capsys):
    assert main(["profile", "cb-gaussian-image", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "Figure 4c" in out


def test_select_command(capsys):
    assert main(
        [
            "select", "cb-gaussian-buffer",
            "--scale", "0.5",
            "--scheme", "sync",
            "--feature", "BB",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "Selected simulation points" in out
    assert "Simulation speedup" in out


def test_select_on_hd4600(capsys):
    assert main(
        ["select", "cb-gaussian-image", "--scale", "0.5",
         "--device", "hd4600"]
    ) == 0
    assert "Error (Eq. 1)" in capsys.readouterr().out


def test_overhead_command(capsys):
    assert main(["overhead", "cb-gaussian-image", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "Overhead factor" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["profile", "not-an-app"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_export_command(tmp_path, capsys):
    assert main(
        [
            "export", "cb-gaussian-image",
            "--scale", "0.5",
            "--out", str(tmp_path),
        ]
    ) == 0
    stem = "cb-gaussian-image.Sync-BB"
    for suffix in (".selection.json", ".bb", ".simpoints", ".weights"):
        assert (tmp_path / f"{stem}{suffix}").exists()
    out = capsys.readouterr().out
    assert "simulation points" in out


def test_exported_selection_loads_back(tmp_path):
    from repro.sampling.serialize import selection_from_json

    main(["export", "cb-gaussian-image", "--scale", "0.5",
          "--out", str(tmp_path)])
    text = (tmp_path / "cb-gaussian-image.Sync-BB.selection.json").read_text()
    selection = selection_from_json(text)
    assert selection.config.label == "Sync-BB"
    assert selection.k >= 1


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_version_matches_package_metadata():
    from repro import __version__

    assert __version__  # never empty, even without installed metadata


def test_trace_command(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(
        ["trace", "cb-gaussian-image", "--scale", "0.5", "--out", str(out)]
    ) == 0
    printed = capsys.readouterr().out
    assert "span tree" in printed
    assert "counters:" in printed
    assert str(out) in printed

    data = json.loads(out.read_text())
    events = data["traceEvents"]
    names = {e["name"] for e in events}
    # Spans from all three required layers:
    assert "runtime.run" in names                              # OpenCL runtime
    assert "gtpin.post_process" in names                       # GT-Pin profiler
    assert {"pipeline.profile_workload", "pipeline.select"} <= names  # sampling
    # Nested: kernel spans sit under API-call spans under runtime.run.
    assert any(n.startswith("api.cl") for n in names)
    assert any(n.startswith("kernel.") for n in names)
    # Required counters:
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert "gtpin.instrumented_instructions" in counter_names
    assert "gtpin.trace_buffer.drains" in counter_names
    # Complete events carry the Chrome trace fields.
    for event in events:
        if event["ph"] == "X":
            assert {"ts", "dur", "pid", "tid"} <= event.keys()
    # The command must not leave telemetry enabled behind it.
    assert telemetry.get() is telemetry.DISABLED


def test_trace_command_jsonl_and_simulate_workflow(tmp_path, capsys):
    out = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    assert main(
        ["trace", "cb-gaussian-image", "--scale", "0.5",
         "--workflow", "simulate", "--out", str(out), "--jsonl", str(jsonl)]
    ) == 0
    capsys.readouterr()
    records = [json.loads(line) for line in jsonl.read_text().splitlines()]
    names = {r["name"] for r in records if r["type"] == "span"}
    assert "simulation.sampled" in names
    assert "simulation.invocations" in names
    counters = {r["name"] for r in records if r["type"] == "counter"}
    assert "simulation.stepped_instructions" in counters
    assert "simulation.wall_seconds" in counters


def test_sim_engine_flag(tmp_path, capsys):
    """--sim-engine selects the engine; the simulation counters (model
    outputs, not wall-clock) are identical across engines."""
    model_counters = (
        "simulation.stepped_instructions",
        "simulation.fast_forwarded_instructions",
        "simulation.simulated_invocations",
        "simulation.simulated_seconds",
    )
    outputs = {}
    for engine in ("reference", "vectorized"):
        out = tmp_path / f"{engine}.json"
        assert main(
            ["trace", "cb-gaussian-image", "--scale", "0.5",
             "--workflow", "simulate", "--sim-engine", engine,
             "--out", str(out)]
        ) == 0
        printed = capsys.readouterr().out
        outputs[engine] = [
            line.strip() for line in printed.splitlines()
            if line.strip().startswith(model_counters)
        ]
    assert len(outputs["reference"]) == len(model_counters)
    assert outputs["reference"] == outputs["vectorized"]


def test_sim_engine_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["trace", "cb-gaussian-image", "--sim-engine", "warp"])


def test_telemetry_flag_on_existing_subcommand(tmp_path, capsys):
    out = tmp_path / "select_trace.json"
    assert main(
        ["select", "cb-gaussian-image", "--scale", "0.5",
         "--telemetry", "--telemetry-out", str(out)]
    ) == 0
    printed = capsys.readouterr().out
    assert "Selected simulation points" in printed  # command output intact
    assert "span tree" in printed
    data = json.loads(out.read_text())
    names = {e["name"] for e in data["traceEvents"]}
    assert "pipeline.select" in names
    assert telemetry.get() is telemetry.DISABLED


def test_disasm_command(capsys):
    assert main(["disasm", "cb-gaussian-image", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "kernel cb-gaussian-image.k0" in out
    assert "[gtpin]" not in out


def test_disasm_instrumented(capsys):
    assert main(
        ["disasm", "cb-gaussian-image", "--scale", "0.5", "--instrumented"]
    ) == 0
    out = capsys.readouterr().out
    assert "[gtpin]" in out


def test_disasm_unknown_kernel(capsys):
    assert main(
        ["disasm", "cb-gaussian-image", "--scale", "0.5",
         "--kernel", "nope"]
    ) == 1
    assert "unknown kernel" in capsys.readouterr().out


def test_top_without_port_is_a_usage_error(monkeypatch, capsys):
    from repro.obs import live

    monkeypatch.delenv(live.PORT_ENV, raising=False)
    assert main(["top", "--once"]) == 2
    assert "--port" in capsys.readouterr().out


def test_top_once_against_dead_endpoint(monkeypatch):
    monkeypatch.delenv("REPRO_LIVE_PORT", raising=False)
    # Nothing listens on port 1; --once must fail fast, not loop.
    assert main(["top", "--once", "--port", "1"]) == 1


def test_live_port_flag_serves_during_run(capsys):
    import json
    import urllib.request

    from repro.obs import live

    class _Probe:
        port = None
        health = None

    real_enable = live.enable

    def probing_enable(port=None, host="127.0.0.1"):
        hub = real_enable(port=port, host=host)
        _Probe.port = hub.server.port
        return hub

    live.enable = probing_enable
    real_disable = live.disable

    def probing_disable():
        # Scrape just before teardown: the run is complete, so totals
        # equal the final merged telemetry.
        if _Probe.port is not None and live.get().enabled:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{_Probe.port}/health", timeout=5
            ) as response:
                _Probe.health = json.loads(response.read().decode())
        real_disable()

    live.disable = probing_disable
    try:
        assert main(
            ["profile", "cb-gaussian-image", "--scale", "0.2",
             "--live-port", "0"]
        ) == 0
    finally:
        live.enable = real_enable
        live.disable = real_disable
    out = capsys.readouterr().out
    assert "live endpoint" in out
    assert _Probe.health is not None
    assert _Probe.health["instructions"]["total"] > 0
    assert _Probe.health["command"] == "gtpin profile"
