"""Set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.gpu.cache import CacheConfig, CacheSimulator, CacheStats


def _sim(size=1024, line=64, ways=2):
    return CacheSimulator(CacheConfig(size_bytes=size, line_bytes=line, ways=ways))


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ValueError, match="power of two"):
        CacheConfig(line_bytes=48)
    with pytest.raises(ValueError, match="divisible"):
        CacheConfig(size_bytes=1000, line_bytes=64, ways=8)


def test_n_sets():
    assert CacheConfig(1024, 64, 2).n_sets == 8


def test_cold_miss_then_hit():
    sim = _sim()
    first = sim.access(np.array([0]), is_write=False)
    assert first.misses == 1 and first.hits == 0
    second = sim.access(np.array([0]), is_write=False)
    assert second.hits == 1 and second.misses == 0


def test_same_line_hits():
    sim = _sim()
    sim.access(np.array([0]), is_write=False)
    batch = sim.access(np.array([8, 16, 63]), is_write=False)
    assert batch.hits == 3


def test_lru_eviction_order():
    # 2-way set: fill both ways, touch the first, insert a third ->
    # the second (least recently used) is evicted.
    sim = _sim(size=1024, line=64, ways=2)
    n_sets = sim.config.n_sets
    a, b, c = 0, n_sets * 64, 2 * n_sets * 64  # all map to set 0
    sim.access(np.array([a, b]), is_write=False)
    sim.access(np.array([a]), is_write=False)  # a is now MRU
    sim.access(np.array([c]), is_write=False)  # evicts b
    assert sim.access(np.array([a]), is_write=False).hits == 1
    assert sim.access(np.array([b]), is_write=False).misses == 1


def test_writeback_on_dirty_eviction():
    sim = _sim(size=1024, line=64, ways=2)
    n_sets = sim.config.n_sets
    a, b, c = 0, n_sets * 64, 2 * n_sets * 64
    sim.access(np.array([a]), is_write=True)  # dirty
    sim.access(np.array([b]), is_write=False)
    sim.access(np.array([c]), is_write=False)  # evicts dirty a
    assert sim.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    sim = _sim(size=1024, line=64, ways=2)
    n_sets = sim.config.n_sets
    addrs = np.array([0, n_sets * 64, 2 * n_sets * 64])
    sim.access(addrs, is_write=False)
    assert sim.stats.evictions == 1
    assert sim.stats.writebacks == 0


def test_stats_accumulate_and_merge():
    sim = _sim()
    sim.access(np.array([0, 64, 128]), is_write=False)
    sim.access(np.array([0]), is_write=False)
    assert sim.stats.accesses == 4
    assert sim.stats.hits + sim.stats.misses == 4
    merged = CacheStats(accesses=1, hits=1).merge(CacheStats(accesses=2, misses=2))
    assert merged.accesses == 3 and merged.hits == 1 and merged.misses == 2


def test_hit_rate_and_miss_rate():
    sim = _sim()
    sim.access(np.array([0, 0, 0, 0]), is_write=False)
    assert sim.stats.hit_rate == pytest.approx(0.75)
    assert sim.stats.miss_rate == pytest.approx(0.25)
    assert CacheStats().hit_rate == 0.0


def test_reset():
    sim = _sim()
    sim.access(np.array([0]), is_write=True)
    sim.reset()
    assert sim.stats.accesses == 0
    assert sim.access(np.array([0]), is_write=False).misses == 1


def test_sequential_stream_mostly_hits():
    sim = CacheSimulator(CacheConfig(size_bytes=64 * 1024))
    addrs = np.arange(0, 32 * 1024, 4)
    batch = sim.access(addrs, is_write=False)
    assert batch.hit_rate > 0.9  # 16 words per 64B line -> 15/16 hits


def test_random_stream_mostly_misses():
    sim = CacheSimulator(CacheConfig(size_bytes=8 * 1024))
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 26, size=2000)
    batch = sim.access(addrs, is_write=False)
    assert batch.miss_rate > 0.8


def test_rejects_2d_input():
    with pytest.raises(ValueError):
        _sim().access(np.zeros((2, 2)), is_write=False)


class TestStreamEngine:
    """access_stream (vectorized) vs access_reference (scalar oracle)."""

    def _configs(self):
        return [
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=8192, line_bytes=32, ways=4),
            # Non-power-of-two set count exercises the %// split fallback.
            CacheConfig(size_bytes=3 * 4096, line_bytes=64, ways=4),
            CacheConfig(size_bytes=64 * 1024, line_bytes=128, ways=8),
        ]

    def _streams(self, rng):
        yield rng.integers(0, 1 << 22, size=500), rng.random(500) < 0.3
        yield np.arange(0, 64 * 500, 64) % (1 << 14), np.zeros(500, bool)
        # Heavy same-line repetition exercises the run-collapsing path.
        base = rng.integers(0, 1 << 12, size=50)
        yield np.repeat(base, 10), rng.random(500) < 0.5
        yield np.zeros(64, dtype=np.int64), np.ones(64, bool)

    def test_stream_matches_reference_walk(self):
        rng = np.random.default_rng(42)
        for config in self._configs():
            for addresses, writes in self._streams(rng):
                addresses = np.asarray(addresses, dtype=np.int64)
                vec = CacheSimulator(config)
                ref = CacheSimulator(config)
                outcome = vec.access_stream(addresses, writes)
                ref_hits = np.zeros(addresses.size, dtype=bool)
                for i in range(addresses.size):
                    batch = ref.access_reference(
                        addresses[i:i + 1], is_write=bool(writes[i])
                    )
                    ref_hits[i] = batch.hits == 1
                assert (outcome.hit == ref_hits).all()
                assert vec.stats.hits == ref.stats.hits
                assert vec.stats.misses == ref.stats.misses
                assert vec.stats.evictions == ref.stats.evictions
                assert vec.stats.writebacks == ref.stats.writebacks
                # Identical replacement state, not just identical counts.
                assert (
                    vec.canonical_state().signature()
                    == ref.canonical_state().signature()
                )

    def test_empty_stream(self):
        sim = _sim()
        outcome = sim.access_stream(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        assert outcome.hit.size == 0
        assert outcome.evictions == 0 and outcome.writebacks == 0
        assert sim.stats.accesses == 0

    def test_scalar_writes_flag(self):
        sim = _sim(size=1024, line=64, ways=2)
        n_sets = sim.config.n_sets
        addrs = np.array([0, n_sets * 64, 2 * n_sets * 64])
        sim.access_stream(addrs, True)  # all writes, fills + evicts dirty
        assert sim.stats.writebacks == 1


class TestMutationCounter:
    def test_accesses_bump_mutations(self):
        sim = _sim()
        before = sim.mutations
        sim.access_stream(np.array([0, 64]), np.array([False, False]))
        assert sim.mutations > before
        before = sim.mutations
        sim.access_reference(np.array([128]), is_write=False)
        assert sim.mutations > before

    def test_empty_access_does_not_bump(self):
        sim = _sim()
        before = sim.mutations
        sim.access_stream(np.empty(0, dtype=np.int64), np.empty(0, bool))
        sim.access_reference(np.empty(0, dtype=np.int64), is_write=False)
        assert sim.mutations == before

    def test_fast_forward_does_not_bump(self):
        """Replaying a fixed point advances clocks and stats but leaves
        the canonical (recency-order) contents untouched."""
        sim = _sim()
        sim.access(np.array([0]), is_write=False)
        sig = sim.canonical_state().signature()
        before = sim.mutations
        sim.fast_forward(CacheStats(accesses=4, hits=4), repeats=3)
        assert sim.mutations == before
        assert sim.canonical_state().signature() == sig
        assert sim.stats.accesses == 1 + 12
        assert sim.stats.hits == 12

    def test_reset_and_restore_bump(self):
        sim = _sim()
        sim.access(np.array([0]), is_write=False)
        state = sim.canonical_state()
        before = sim.mutations
        sim.reset()
        assert sim.mutations > before
        before = sim.mutations
        sim.restore_state(state, accesses=1)
        assert sim.mutations > before
        assert sim.canonical_state().signature() == state.signature()


class TestHierarchy:
    def _hier(self):
        from repro.gpu.cache import CacheHierarchy

        return CacheHierarchy(
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=8192, line_bytes=64, ways=4),
        )

    def test_l3_hit_never_reaches_llc(self):
        hier = self._hier()
        hier.access(np.array([0]), is_write=False)
        llc_before = hier.llc.stats.accesses
        hier.access(np.array([0]), is_write=False)  # L3 hit
        assert hier.llc.stats.accesses == llc_before

    def test_l3_misses_forwarded_in_order(self):
        hier = self._hier()
        stats = hier.access(np.array([0, 4096, 0]), is_write=False)
        # Two distinct lines miss the cold L3; the repeat of line 0 hits.
        assert stats.l3.misses == 2
        assert stats.llc.accesses == 2

    def test_llc_absorbs_l3_capacity_misses(self):
        hier = self._hier()
        # Footprint bigger than L3 (1 KB) but smaller than LLC (8 KB).
        addrs = np.arange(0, 4096, 64)
        hier.access(addrs, is_write=False)
        second = hier.access(addrs, is_write=False)
        # Second pass: the sequential stream thrashes the tiny L3, but
        # the LLC holds the whole footprint -- every L3 miss of the
        # second pass hits there (cumulative stats: 64 cold misses from
        # pass one, then 64 hits).
        assert second.llc.hits == len(addrs)
        assert second.dram_accesses == len(addrs)  # only the cold pass

    def test_dram_accesses_counted(self):
        hier = self._hier()
        stats = hier.access(np.array([0, 1 << 20]), is_write=False)
        assert stats.dram_accesses == 2  # both cold-miss every level

    def test_reset(self):
        hier = self._hier()
        hier.access(np.array([0]), is_write=True)
        hier.reset()
        assert hier.stats.l3.accesses == 0
        assert hier.stats.llc.accesses == 0

    def test_overall_hit_rate_empty(self):
        assert self._hier().stats.overall_hit_rate == 0.0
