"""Set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.gpu.cache import CacheConfig, CacheSimulator, CacheStats


def _sim(size=1024, line=64, ways=2):
    return CacheSimulator(CacheConfig(size_bytes=size, line_bytes=line, ways=ways))


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ValueError, match="power of two"):
        CacheConfig(line_bytes=48)
    with pytest.raises(ValueError, match="divisible"):
        CacheConfig(size_bytes=1000, line_bytes=64, ways=8)


def test_n_sets():
    assert CacheConfig(1024, 64, 2).n_sets == 8


def test_cold_miss_then_hit():
    sim = _sim()
    first = sim.access(np.array([0]), is_write=False)
    assert first.misses == 1 and first.hits == 0
    second = sim.access(np.array([0]), is_write=False)
    assert second.hits == 1 and second.misses == 0


def test_same_line_hits():
    sim = _sim()
    sim.access(np.array([0]), is_write=False)
    batch = sim.access(np.array([8, 16, 63]), is_write=False)
    assert batch.hits == 3


def test_lru_eviction_order():
    # 2-way set: fill both ways, touch the first, insert a third ->
    # the second (least recently used) is evicted.
    sim = _sim(size=1024, line=64, ways=2)
    n_sets = sim.config.n_sets
    a, b, c = 0, n_sets * 64, 2 * n_sets * 64  # all map to set 0
    sim.access(np.array([a, b]), is_write=False)
    sim.access(np.array([a]), is_write=False)  # a is now MRU
    sim.access(np.array([c]), is_write=False)  # evicts b
    assert sim.access(np.array([a]), is_write=False).hits == 1
    assert sim.access(np.array([b]), is_write=False).misses == 1


def test_writeback_on_dirty_eviction():
    sim = _sim(size=1024, line=64, ways=2)
    n_sets = sim.config.n_sets
    a, b, c = 0, n_sets * 64, 2 * n_sets * 64
    sim.access(np.array([a]), is_write=True)  # dirty
    sim.access(np.array([b]), is_write=False)
    sim.access(np.array([c]), is_write=False)  # evicts dirty a
    assert sim.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    sim = _sim(size=1024, line=64, ways=2)
    n_sets = sim.config.n_sets
    addrs = np.array([0, n_sets * 64, 2 * n_sets * 64])
    sim.access(addrs, is_write=False)
    assert sim.stats.evictions == 1
    assert sim.stats.writebacks == 0


def test_stats_accumulate_and_merge():
    sim = _sim()
    sim.access(np.array([0, 64, 128]), is_write=False)
    sim.access(np.array([0]), is_write=False)
    assert sim.stats.accesses == 4
    assert sim.stats.hits + sim.stats.misses == 4
    merged = CacheStats(accesses=1, hits=1).merge(CacheStats(accesses=2, misses=2))
    assert merged.accesses == 3 and merged.hits == 1 and merged.misses == 2


def test_hit_rate_and_miss_rate():
    sim = _sim()
    sim.access(np.array([0, 0, 0, 0]), is_write=False)
    assert sim.stats.hit_rate == pytest.approx(0.75)
    assert sim.stats.miss_rate == pytest.approx(0.25)
    assert CacheStats().hit_rate == 0.0


def test_reset():
    sim = _sim()
    sim.access(np.array([0]), is_write=True)
    sim.reset()
    assert sim.stats.accesses == 0
    assert sim.access(np.array([0]), is_write=False).misses == 1


def test_sequential_stream_mostly_hits():
    sim = CacheSimulator(CacheConfig(size_bytes=64 * 1024))
    addrs = np.arange(0, 32 * 1024, 4)
    batch = sim.access(addrs, is_write=False)
    assert batch.hit_rate > 0.9  # 16 words per 64B line -> 15/16 hits


def test_random_stream_mostly_misses():
    sim = CacheSimulator(CacheConfig(size_bytes=8 * 1024))
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 26, size=2000)
    batch = sim.access(addrs, is_write=False)
    assert batch.miss_rate > 0.8


def test_rejects_2d_input():
    with pytest.raises(ValueError):
        _sim().access(np.zeros((2, 2)), is_write=False)


class TestHierarchy:
    def _hier(self):
        from repro.gpu.cache import CacheHierarchy

        return CacheHierarchy(
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=8192, line_bytes=64, ways=4),
        )

    def test_l3_hit_never_reaches_llc(self):
        hier = self._hier()
        hier.access(np.array([0]), is_write=False)
        llc_before = hier.llc.stats.accesses
        hier.access(np.array([0]), is_write=False)  # L3 hit
        assert hier.llc.stats.accesses == llc_before

    def test_l3_misses_forwarded_in_order(self):
        hier = self._hier()
        stats = hier.access(np.array([0, 4096, 0]), is_write=False)
        # Two distinct lines miss the cold L3; the repeat of line 0 hits.
        assert stats.l3.misses == 2
        assert stats.llc.accesses == 2

    def test_llc_absorbs_l3_capacity_misses(self):
        hier = self._hier()
        # Footprint bigger than L3 (1 KB) but smaller than LLC (8 KB).
        addrs = np.arange(0, 4096, 64)
        hier.access(addrs, is_write=False)
        second = hier.access(addrs, is_write=False)
        # Second pass: the sequential stream thrashes the tiny L3, but
        # the LLC holds the whole footprint -- every L3 miss of the
        # second pass hits there (cumulative stats: 64 cold misses from
        # pass one, then 64 hits).
        assert second.llc.hits == len(addrs)
        assert second.dram_accesses == len(addrs)  # only the cold pass

    def test_dram_accesses_counted(self):
        hier = self._hier()
        stats = hier.access(np.array([0, 1 << 20]), is_write=False)
        assert stats.dram_accesses == 2  # both cold-miss every level

    def test_reset(self):
        hier = self._hier()
        hier.access(np.array([0]), is_write=True)
        hier.reset()
        assert hier.stats.l3.accesses == 0
        assert hier.stats.llc.accesses == 0

    def test_overall_hit_rate_empty(self):
        assert self._hier().stats.overall_hit_rate == 0.0
