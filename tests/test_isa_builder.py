"""KernelBuilder: fluent construction."""

import numpy as np
import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Loop, Seq, TripCount, execution_counts


def test_build_simple_kernel():
    kb = KernelBuilder("k", simd_width=16)
    with kb.block() as b:
        b.mov()
        b.alu("add")
    kernel = kb.build()
    assert kernel.n_blocks == 1
    assert kernel.static_instruction_count == 2


def test_loop_structure_multiplies_counts():
    kb = KernelBuilder("k")
    with kb.block() as b:
        b.mov()
    with kb.loop(5):
        with kb.block() as b:
            b.alu("mul")
    kernel = kb.build()
    counts = execution_counts(
        kernel.program, {}, np.random.default_rng(0), kernel.n_blocks
    )
    assert counts.tolist() == [1, 5]


def test_arg_dependent_loop():
    kb = KernelBuilder("k", arg_names=("iters",))
    with kb.loop(TripCount(base=0, arg="iters", scale=1.0)):
        with kb.block() as b:
            b.alu("add")
    kernel = kb.build()
    counts = execution_counts(
        kernel.program, {"iters": 9}, np.random.default_rng(0), 1
    )
    assert counts[0] == 9


def test_branch_structure():
    kb = KernelBuilder("k")
    with kb.loop(100):
        with kb.branch(0.3):
            with kb.block() as b:
                b.alu("add")
    kernel = kb.build()
    counts = execution_counts(
        kernel.program, {}, np.random.default_rng(0), 1
    )
    assert counts[0] == 30


def test_nested_contexts():
    kb = KernelBuilder("k")
    with kb.block() as b:
        b.mov()
    with kb.loop(3):
        with kb.loop(4):
            with kb.block() as b:
                b.alu("add")
    kernel = kb.build()
    counts = execution_counts(
        kernel.program, {}, np.random.default_rng(0), kernel.n_blocks
    )
    assert counts.tolist() == [1, 12]


def test_load_store_emit_sends():
    kb = KernelBuilder("k")
    with kb.block() as b:
        b.load(bytes_per_channel=8)
        b.store(bytes_per_channel=4)
        b.atomic()
    kernel = kb.build()
    sends = [i for i in kernel.block(0) if i.is_send]
    assert len(sends) == 3
    assert sends[0].bytes_read == 8 * 16
    assert sends[1].bytes_written == 4 * 16


def test_alu_rejects_send_and_control():
    kb = KernelBuilder("k")
    with kb.block() as b:
        with pytest.raises(ValueError, match="cannot emit"):
            b.alu("send")
        with pytest.raises(ValueError, match="cannot emit"):
            b.alu("ret")
        b.mov()
    kb.build()


def test_control_rejects_non_control():
    kb = KernelBuilder("k")
    with kb.block() as b:
        with pytest.raises(ValueError, match="not a control opcode"):
            b.control("add")
        b.control("ret")
    kernel = kb.build()
    assert kernel.block(0).instructions[0].opcode is Opcode.RET


def test_default_exec_size_is_kernel_width():
    kb = KernelBuilder("k", simd_width=8)
    with kb.block() as b:
        b.alu("add")
    kernel = kb.build()
    assert kernel.block(0).instructions[0].exec_size == 8


def test_build_without_blocks_fails():
    with pytest.raises(RuntimeError, match="no blocks"):
        KernelBuilder("k").build()


def test_successor_wiring_linear():
    kb = KernelBuilder("k")
    for _ in range(3):
        with kb.block() as b:
            b.mov()
    kernel = kb.build()
    assert kernel.block(0).successors == (1,)
    assert kernel.block(1).successors == (2,)
    assert kernel.block(2).successors == ()
