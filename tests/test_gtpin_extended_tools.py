"""Extended GT-Pin tools: SIMD utilization and kernel cycles."""

import pytest

from repro.gtpin.profiler import GTPinSession, build_runtime
from repro.gtpin.tools import KernelCyclesTool, SIMDUtilizationTool

from conftest import TinyApplication, build_tiny_kernel


@pytest.fixture()
def session_and_run():
    k1 = build_tiny_kernel("u.k0", simd_width=16)
    k2 = build_tiny_kernel("u.k1", simd_width=8)
    app = TinyApplication(
        [k1, k2],
        [
            ("u.k0", 256, 4.0),   # 256 = 16 full SIMD16 threads
            ("u.k0", 250, 4.0),   # 250 -> last thread has 10/16 live lanes
            ("u.k1", 64, 2.0),
        ],
        name="util-app",
    )
    session = GTPinSession(
        [SIMDUtilizationTool(), KernelCyclesTool(frequency_mhz=1150.0)]
    )
    runtime = build_runtime(app, session=session)
    run = runtime.run(app.host_program, trial_seed=0)
    return app, run, session.post_process()


def test_utilization_bounds(session_and_run):
    _, _, report = session_and_run
    util = report["simd_utilization"]
    for kernel in util.per_kernel.values():
        assert 0.0 < kernel.utilization <= 1.0
    assert 0.0 < util.overall() <= 1.0


def test_partial_tail_thread_lowers_utilization(session_and_run):
    _, _, report = session_and_run
    util = report["simd_utilization"]
    # u.k0 ran once full (256) and once ragged (250/256 live lanes):
    # utilization must be below 1 but above the ragged run alone.
    k0 = util.per_kernel["u.k0"].utilization
    assert 0.97 < k0 < 1.0
    # u.k1 ran 64 items over SIMD8 = 8 full threads: fully utilized.
    assert util.per_kernel["u.k1"].utilization == pytest.approx(1.0)


def test_worst_kernel(session_and_run):
    _, _, report = session_and_run
    util = report["simd_utilization"]
    worst = util.worst_kernel()
    assert worst is not None
    assert worst.kernel_name == "u.k0"


def test_kernel_cycles_match_dispatch_times(session_and_run):
    _, run, report = session_and_run
    cycles = report["kernel_cycles"]
    assert cycles.frequency_mhz == 1150.0
    total = cycles.total_seconds
    assert total == pytest.approx(run.total_kernel_seconds)
    k0 = cycles.per_kernel["u.k0"]
    assert k0.invocations == 2
    assert k0.cycles_at_mhz == pytest.approx(k0.total_seconds * 1.15e9)
    assert k0.mean_seconds == pytest.approx(k0.total_seconds / 2)


def test_hottest_ordering(session_and_run):
    _, _, report = session_and_run
    cycles = report["kernel_cycles"]
    hottest = cycles.hottest(2)
    assert len(hottest) == 2
    assert hottest[0].total_seconds >= hottest[1].total_seconds


def test_empty_utilization_report():
    from repro.gtpin.tools.utilization import UtilizationReport

    empty = UtilizationReport(per_kernel={})
    assert empty.overall() == 0.0
    assert empty.worst_kernel() is None
