"""repro.faults: plans, deterministic injection, retries, degradation.

The robustness acceptance tests: a seeded plan replays identical fault
sequences across runs, transient storms are retried away or surfaced
as flagged partial profiles (never uncaught exceptions), the
``faults.injected.*`` / ``faults.recovered.*`` counters reach the
telemetry export, and with faults disabled every hook is a no-op.
"""

import pytest

from repro import faults, telemetry
from repro.cli import main as cli_main
from repro.driver.driver import GPUDriver
from repro.driver.jit import KernelSource
from repro.faults import (
    DISABLED,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedOutOfResources,
    RetryPolicy,
    SITES,
    TRANSIENT_SITES,
    retry_transient,
)
from repro.gpu.device import HD4000
from repro.gpu.execution import GPUDevice
from repro.parallel.cache import ProfileCache
from repro.sampling.explorer import ALL_CONFIGS
from repro.sampling.pipeline import explore_application, profile_workload
from repro.telemetry import to_chrome_trace

from conftest import FAST_OPTIONS, SMALL_SPEC, build_tiny_kernel

#: A zero-sleep policy so retry-heavy tests stay fast.
FAST_RETRIES = RetryPolicy(max_attempts=4, base_delay_seconds=0.0)


# -- fault plans --------------------------------------------------------------


def test_plan_parse_and_round_trip():
    spec = "seed=42;jit.build=0.1;dispatch.resources=0.05:3;timeout=0.5"
    plan = FaultPlan.parse(spec)
    assert plan.seed == 42
    assert plan.dispatch_timeout_seconds == 0.5
    assert plan.rule_for("jit.build") == FaultRule("jit.build", 0.1)
    assert plan.rule_for("dispatch.resources") == FaultRule(
        "dispatch.resources", 0.05, max_injections=3
    )
    assert FaultPlan.parse(plan.to_spec()) == plan
    # Commas work as separators too.
    assert FaultPlan.parse("seed=1,event.lost=0.2").seed == 1


def test_plan_from_env(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv(faults.FAULTS_ENV, "seed=9;trace.truncate=0.5")
    plan = FaultPlan.from_env()
    assert plan is not None and plan.seed == 9
    assert plan.rule_for("trace.truncate").probability == 0.5


def test_plan_uniform_covers_transient_sites():
    plan = FaultPlan.uniform(0.10, seed=7)
    assert tuple(rule.site for rule in plan.rules) == TRANSIENT_SITES
    assert all(rule.probability == 0.10 for rule in plan.rules)


@pytest.mark.parametrize(
    "bad",
    [
        "no-such-site=0.1",
        "jit.build=1.5",
        "jit.build=0.1;jit.build=0.2",
        "timeout=0",
        "jit.build",
        "jit.build=0.1:-1",
    ],
)
def test_plan_validation_rejects(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


# -- the injector: determinism, replay, caps ----------------------------------


def _drive(injector):
    """A fixed scope/draw schedule; returns the decision stream."""
    decisions = []
    for scope in ("run/a/0", "timings/a/0", "run/a/0"):
        injector.begin_scope(scope)
        for _ in range(20):
            for site in ("jit.build", "event.lost"):
                injection = injector.draw(site)
                decisions.append(
                    None
                    if injection is None
                    else (injection.site, injection.ordinal)
                )
    return decisions


def test_injection_stream_is_deterministic():
    plan = FaultPlan(
        seed=99,
        rules=(FaultRule("jit.build", 0.3), FaultRule("event.lost", 0.5)),
    )
    first, second = FaultInjector(plan), FaultInjector(plan)
    assert _drive(first) == _drive(second)
    assert first.log == second.log
    assert first.log, "the schedule should inject at these probabilities"


def test_reentered_scope_replays_the_same_decisions():
    plan = FaultPlan(seed=99, rules=(FaultRule("event.lost", 0.5),))
    injector = FaultInjector(plan)
    decisions = _drive(injector)
    # The schedule enters "run/a/0" at positions [0:40] and again at
    # [80:120]; re-entering the scope must replay the stream exactly.
    assert decisions[0:40] == decisions[80:120]


def test_different_seeds_differ():
    rules = (FaultRule("event.lost", 0.5),)
    a = FaultInjector(FaultPlan(seed=1, rules=rules))
    b = FaultInjector(FaultPlan(seed=2, rules=rules))
    assert _drive(a) != _drive(b)


def test_max_injections_caps_total():
    plan = FaultPlan(
        seed=1, rules=(FaultRule("event.lost", 1.0, max_injections=1),)
    )
    injector = FaultInjector(plan)
    injector.begin_scope("s")
    assert injector.draw("event.lost") is not None
    assert injector.draw("event.lost") is None
    assert injector.injected == {"event.lost": 1}


def test_unruled_site_never_fires():
    injector = FaultInjector(FaultPlan(seed=1))
    injector.begin_scope("s")
    assert all(injector.draw("jit.build") is None for _ in range(50))
    assert injector.injected_total == 0


# -- disabled: zero-overhead no-ops -------------------------------------------


def test_disabled_is_the_default():
    assert faults.get() is DISABLED
    assert not faults.is_enabled()
    assert DISABLED.draw("jit.build") is None
    DISABLED.begin_scope("x")
    DISABLED.note_recovered("y")
    assert DISABLED.injected_total == 0


def test_session_restores_previous_injector():
    plan = FaultPlan(seed=1)
    with faults.session(plan) as outer:
        assert faults.get() is outer
        with faults.session(plan) as inner:
            assert faults.get() is inner
        assert faults.get() is outer
    assert faults.get() is DISABLED


def test_empty_plan_leaves_results_unchanged(small_app, small_workload):
    """Enabled-but-silent injection must not perturb any result."""
    with faults.session(FaultPlan(seed=123)) as injector:
        redone = profile_workload(small_app, trial_seed=3)
    assert injector.injected_total == 0
    assert redone.health.ok
    assert (
        redone.log.total_instructions
        == small_workload.log.total_instructions
    )
    assert len(redone.log.invocations) == len(small_workload.log.invocations)


# -- retries ------------------------------------------------------------------


def test_retry_backoff_delays():
    delays = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 4:
            raise InjectedOutOfResources("transient")
        return "ok"

    policy = RetryPolicy(
        max_attempts=4,
        base_delay_seconds=1.0,
        multiplier=2.0,
        max_delay_seconds=3.0,
    )
    assert retry_transient(flaky, policy=policy, sleep=delays.append) == "ok"
    assert delays == [1.0, 2.0, 3.0]  # exponential, capped


def test_retry_nontransient_passthrough():
    calls = {"n": 0}

    def boom():
        calls["n"] += 1
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        retry_transient(boom, policy=FAST_RETRIES, sleep=lambda _s: None)
    assert calls["n"] == 1


def test_retry_exhaustion_reraises_last_error():
    calls = {"n": 0}

    def always():
        calls["n"] += 1
        raise InjectedOutOfResources("again")

    with pytest.raises(InjectedOutOfResources):
        retry_transient(always, policy=FAST_RETRIES, sleep=lambda _s: None)
    assert calls["n"] == FAST_RETRIES.max_attempts


def test_retry_notes_recovery_per_site():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise InjectedOutOfResources("once")
        return 1

    with faults.session(FaultPlan(seed=0)) as injector:
        value = retry_transient(
            flaky, policy=FAST_RETRIES, sleep=lambda _s: None
        )
    assert value == 1
    assert injector.recovered == {"dispatch.resources": 1}


# -- the driver's build retry -------------------------------------------------


def _sources():
    kernel = build_tiny_kernel("fk.k0")
    return {"fk.k0": KernelSource(name="fk.k0", body=kernel)}


def test_build_retry_recovers_capped_failures():
    plan = FaultPlan(
        seed=3, rules=(FaultRule("jit.build", 1.0, max_injections=2),)
    )
    with faults.session(plan) as injector:
        driver = GPUDriver(GPUDevice(HD4000), retry_policy=FAST_RETRIES)
        failed = driver.build_program(_sources())
    assert failed == ()
    assert injector.injected == {"jit.build": 2}
    assert injector.recovered == {"jit.build": 1}
    assert driver.binary("fk.k0") is not None


def test_build_exhaustion_returns_failed_kernels():
    plan = FaultPlan(seed=3, rules=(FaultRule("jit.build", 1.0),))
    with faults.session(plan):
        driver = GPUDriver(GPUDevice(HD4000), retry_policy=FAST_RETRIES)
        failed = driver.build_program(_sources())
    assert failed == ("fk.k0",)


# -- graceful degradation: flagged partial profiles ---------------------------


def test_lost_events_flag_partial_profile(small_app):
    plan = FaultPlan(seed=4, rules=(FaultRule("event.lost", 1.0),))
    with faults.session(plan):
        workload = profile_workload(small_app, trial_seed=3)
    assert not workload.health.ok
    assert workload.health.lost_events > 0
    assert any(f.startswith("lost_events:") for f in workload.health.flags)


def test_flaky_timings_counted(small_app):
    plan = FaultPlan(seed=4, rules=(FaultRule("timing.flaky", 1.0),))
    with faults.session(plan):
        workload = profile_workload(small_app, trial_seed=3)
    assert workload.health.flaky_timings == workload.timings.flaky_count
    assert workload.health.flaky_timings > 0


def test_exhausted_dispatches_drop_and_flag(small_app):
    plan = FaultPlan(seed=4, rules=(FaultRule("dispatch.resources", 0.9),))
    with faults.session(plan):
        workload = profile_workload(small_app, trial_seed=3)
    assert workload.health.dropped_dispatches > 0
    # Dropped dispatches vanish from the log, they do not corrupt it.
    assert 0 < len(workload.log.invocations) < SMALL_SPEC.n_invocations


def test_profile_cache_bypassed_under_faults(tmp_path, small_app):
    cache = ProfileCache(tmp_path)
    plan = FaultPlan(seed=9, rules=(FaultRule("event.lost", 1.0),))
    with faults.session(plan):
        profile_workload(small_app, trial_seed=3, cache=cache)
    assert not any(tmp_path.iterdir()), "faulted profiles must not persist"


# -- acceptance: seeded storms ------------------------------------------------


def test_identical_seeds_replay_identical_fault_sequences(small_app):
    """Two runs under the same plan inject the exact same fault stream."""
    plan = FaultPlan.uniform(0.2, seed=5, sites=tuple(SITES))
    runs = []
    for _ in range(2):
        with faults.session(plan) as injector:
            workload = profile_workload(small_app, trial_seed=3)
        runs.append((list(injector.log), workload.health))
    assert runs[0][0] == runs[1][0]
    assert runs[0][0], "a 20% storm over every site should inject"
    assert runs[0][1] == runs[1][1]


def test_transient_storm_sweep_completes_with_flagged_partials(mini_suite):
    """A seeded 10% storm over every site: the full mini-suite sweep
    finishes with zero uncaught exceptions, and every fault is either
    recovered, in ``ExplorationResult.errors``, or flagged in health."""
    plan = FaultPlan.uniform(0.10, seed=2026, sites=tuple(SITES))
    with faults.session(plan) as injector:
        for app in mini_suite:
            workload = profile_workload(app, trial_seed=0)
            exploration = explore_application(workload, options=FAST_OPTIONS)
            scored = len(exploration.results) + len(exploration.errors)
            assert scored == len(ALL_CONFIGS)
            if workload.health.ok:
                assert exploration.health is None
            else:
                assert exploration.health == workload.health
            for config, message in exploration.errors.items():
                assert config in ALL_CONFIGS and message
    assert injector.injected_total > 0
    assert injector.recovered_total > 0


# -- telemetry ----------------------------------------------------------------


def test_fault_counters_reach_the_telemetry_export():
    plan = FaultPlan(seed=1, rules=(FaultRule("jit.build", 1.0),))
    with telemetry.session() as tm:
        with faults.session(plan) as injector:
            injector.begin_scope("test")
            assert injector.draw("jit.build") is not None
            injector.note_recovered("jit.build")
        assert tm.counter_value("faults.injected.jit.build") == 1
        assert tm.counter_value("faults.recovered.jit.build") == 1
        names = {e["name"] for e in to_chrome_trace(tm)["traceEvents"]}
    assert "faults.injected.jit.build" in names
    assert "faults.recovered.jit.build" in names


def test_retry_traffic_counters():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise InjectedOutOfResources("transient")
        return 1

    with telemetry.session() as tm:
        retry_transient(flaky, policy=FAST_RETRIES, sleep=lambda _s: None)
        with pytest.raises(InjectedOutOfResources):
            retry_transient(
                lambda: (_ for _ in ()).throw(InjectedOutOfResources("x")),
                policy=RetryPolicy(max_attempts=1),
                sleep=lambda _s: None,
            )
        assert tm.counter_value("faults.retry.attempts") == 2
        assert tm.counter_value("faults.retry.exhausted") == 1


# -- CLI ----------------------------------------------------------------------


def test_cli_env_plan_activates_and_summarizes(capsys, monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV, "seed=5;jit.build=0.25")
    status = cli_main(["suite"])
    out = capsys.readouterr().out
    assert status == 0
    assert "fault plan: seed=5" in out
    assert "fault injection (seed 5)" in out
