"""Roofline timing model: compute/memory balance, frequency, EUs, noise."""

import numpy as np
import pytest

from repro.gpu.device import HD4000, HD4600
from repro.gpu.timing import TimingModel, TimingParameters


def _model(device=HD4000, **kwargs):
    return TimingModel(device, TimingParameters(**kwargs))


def test_compute_bound_kernel():
    cost = _model().cost(total_issue_cycles=1e9, total_bytes=1e3,
                         n_hw_threads=256)
    assert not cost.memory_bound
    assert cost.total_seconds > cost.memory_seconds


def test_memory_bound_kernel():
    cost = _model().cost(total_issue_cycles=1e3, total_bytes=1e9,
                         n_hw_threads=256)
    assert cost.memory_bound


def test_launch_overhead_included():
    cost = _model().cost(0.0, 0.0, 128)
    assert cost.total_seconds == pytest.approx(
        HD4000.kernel_launch_overhead_s
    )


def test_compute_time_scales_inverse_frequency():
    fast = _model().cost(1e9, 0.0, 256).compute_seconds
    slow = _model(HD4000.at_frequency(575.0)).cost(1e9, 0.0, 256).compute_seconds
    assert slow == pytest.approx(2.0 * fast)


def test_memory_time_frequency_independent():
    fast = _model().cost(0.0, 1e9, 256).memory_seconds
    slow = _model(HD4000.at_frequency(350.0)).cost(0.0, 1e9, 256).memory_seconds
    assert slow == pytest.approx(fast)


def test_more_eus_shrink_compute_time():
    ivy = _model(HD4000).cost(1e9, 0.0, 512).compute_seconds
    haswell = _model(HD4600).cost(1e9, 0.0, 512).compute_seconds
    assert haswell < ivy


def test_low_occupancy_penalty():
    full = _model().cost(1e8, 0.0, 128).compute_seconds
    starved = _model().cost(1e8, 0.0, 8).compute_seconds
    assert starved > full


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        _model().cost(-1.0, 0.0, 128)


def test_noise_is_lognormal_and_seeded():
    model = _model(noise_sigma=0.05)
    cost = model.cost(1e8, 1e6, 128)
    rng_a = np.random.default_rng(1)
    rng_b = np.random.default_rng(1)
    assert model.sample_seconds(cost, rng_a) == pytest.approx(
        model.sample_seconds(cost, rng_b)
    )
    samples = [
        model.sample_seconds(cost, np.random.default_rng(s)) for s in range(50)
    ]
    assert np.std(samples) > 0
    # Noise is multiplicative around the deterministic cost.
    assert np.mean(samples) == pytest.approx(cost.total_seconds, rel=0.05)


def test_zero_noise_is_deterministic():
    model = _model(noise_sigma=0.0)
    cost = model.cost(1e8, 1e6, 128)
    assert model.sample_seconds(cost, np.random.default_rng(0)) == pytest.approx(
        cost.total_seconds
    )


def test_parameter_validation():
    with pytest.raises(ValueError):
        TimingParameters(noise_sigma=-0.1)
    with pytest.raises(ValueError):
        TimingParameters(bandwidth_efficiency=0.0)
    with pytest.raises(ValueError):
        TimingParameters(issue_efficiency=1.5)


def test_with_device_keeps_params():
    params = TimingParameters(noise_sigma=0.07)
    model = TimingModel(HD4000, params).with_device(HD4600)
    assert model.device is HD4600
    assert model.params.noise_sigma == 0.07
