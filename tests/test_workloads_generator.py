"""Application generator: host-program structure and determinism."""

import dataclasses

import pytest

from repro.gtpin.profiler import build_runtime
from repro.opencl.api import KERNEL_ENQUEUE, CallCategory
from repro.workloads.generator import generate_application
from repro.workloads.spec import AppSpec

from conftest import SMALL_SPEC


def _spec(**overrides):
    return dataclasses.replace(SMALL_SPEC, **overrides)


def test_generation_deterministic():
    a = generate_application(SMALL_SPEC, seed=1)
    b = generate_application(SMALL_SPEC, seed=1)
    assert [c.name for c in a.host_program] == [c.name for c in b.host_program]
    assert a.kernel_names == b.kernel_names


def test_seed_changes_program():
    a = generate_application(SMALL_SPEC, seed=1)
    b = generate_application(SMALL_SPEC, seed=2)
    assert [str(c) for c in a.host_program] != [str(c) for c in b.host_program]


def test_kernel_count_matches_spec():
    app = generate_application(_spec(n_kernels=7), seed=0)
    assert len(app.sources) == 7


def test_invocation_count_matches_spec():
    app = generate_application(_spec(n_invocations=77), seed=0)
    enqueues = sum(
        1 for c in app.host_program if c.name == KERNEL_ENQUEUE
    )
    assert enqueues == 77


def test_program_starts_with_setup_and_ends_with_teardown():
    app = generate_application(SMALL_SPEC, seed=0)
    names = [c.name for c in app.host_program]
    assert names[0] == "clGetPlatformIDs"
    assert "clBuildProgram" in names[:10]
    assert names[-1] == "clReleaseContext"


def test_every_kernel_created_before_use():
    app = generate_application(SMALL_SPEC, seed=0)
    created = set()
    for call in app.host_program:
        if call.name == "clCreateKernel":
            created.add(call.args["kernel"])
        elif call.name == KERNEL_ENQUEUE:
            assert call.args["kernel"] in created


def test_generated_program_actually_runs():
    app = generate_application(SMALL_SPEC, seed=0)
    run = build_runtime(app).run(app.host_program)
    assert len(run.dispatches) == SMALL_SPEC.n_invocations


def test_sync_rate_approximates_spec():
    spec = _spec(n_invocations=400, enqueues_per_sync=5.0)
    app = generate_application(spec, seed=0)
    counts = app.host_program.category_counts()
    syncs = counts[CallCategory.SYNCHRONIZATION]
    # ~400/5 = 80 interior syncs plus the teardown clFinish.
    assert 70 <= syncs <= 95


def test_sub_one_enqueues_per_sync():
    """Values < 1 mean several sync calls per enqueue (juliaset-style)."""
    spec = _spec(n_invocations=50, enqueues_per_sync=0.5)
    app = generate_application(spec, seed=0)
    counts = app.host_program.category_counts()
    assert counts[CallCategory.SYNCHRONIZATION] >= 90


def test_other_call_rate_scales():
    chatty = generate_application(
        _spec(other_calls_per_enqueue=10.0), seed=0
    )
    quiet = generate_application(
        _spec(other_calls_per_enqueue=0.5), seed=0
    )
    chatty_frac = (
        chatty.host_program.category_counts()[CallCategory.OTHER]
        / len(chatty.host_program)
    )
    quiet_frac = (
        quiet.host_program.category_counts()[CallCategory.OTHER]
        / len(quiet.host_program)
    )
    assert chatty_frac > quiet_frac


def test_phases_change_arguments():
    app = generate_application(_spec(n_phases=3, n_invocations=150), seed=1)
    values = {
        (call.args["kernel"], call.args["value"])
        for call in app.host_program
        if call.name == "clSetKernelArg" and call.args["arg_index"] == 0
    }
    # Across phases, at least one kernel sees more than one iters value.
    kernels_with_multiple = {
        k for k, _ in values
        if len([v for kk, v in values if kk == k]) > 1
    }
    assert kernels_with_multiple


def test_spec_validation():
    with pytest.raises(ValueError):
        _spec(n_kernels=0)
    with pytest.raises(ValueError):
        _spec(n_invocations=0)
    with pytest.raises(ValueError):
        _spec(enqueues_per_sync=0.0)
    with pytest.raises(ValueError):
        _spec(global_work_sizes=())


def test_scaled_spec_shrinks_invocations():
    spec = _spec(n_invocations=1000)
    scaled = spec.scaled(0.1)
    assert scaled.n_invocations == 100
    assert scaled.n_kernels == spec.n_kernels
    with pytest.raises(ValueError):
        spec.scaled(0.0)


def test_scaled_spec_floor():
    assert _spec(n_invocations=100).scaled(0.01).n_invocations == 20
