"""CoFluent tracer, timing capture, and record/replay."""

import pytest

from repro.cofluent.recorder import record, replay, replay_timings
from repro.cofluent.timing import capture_timings
from repro.cofluent.tracer import CoFluentTracer
from repro.gpu.device import HD4000, HD4600
from repro.gtpin.profiler import build_runtime
from repro.opencl.api import CallCategory


def test_tracer_counts_categories(tiny_app):
    runtime = build_runtime(tiny_app)
    tracer = CoFluentTracer()
    tracer.attach(runtime)
    runtime.run(tiny_app.host_program)
    report = tracer.report()
    assert report.total_calls == len(tiny_app.host_program)
    assert report.kernel_calls == 6
    assert report.synchronization_calls == 3  # 2 interior + trailing finish
    assert (
        report.kernel_calls + report.synchronization_calls + report.other_calls
        == report.total_calls
    )


def test_tracer_fractions(tiny_app):
    runtime = build_runtime(tiny_app)
    tracer = CoFluentTracer()
    tracer.attach(runtime)
    runtime.run(tiny_app.host_program)
    report = tracer.report()
    total = sum(
        report.fraction(c) for c in CallCategory
    )
    assert total == pytest.approx(1.0)


def test_tracer_reset(tiny_app):
    tracer = CoFluentTracer()
    runtime = build_runtime(tiny_app)
    tracer.attach(runtime)
    runtime.run(tiny_app.host_program)
    tracer.reset()
    assert tracer.report().total_calls == 0


def test_capture_timings(tiny_app):
    runtime = build_runtime(tiny_app)
    run = runtime.run(tiny_app.host_program, trial_seed=2)
    trace = capture_timings(run)
    assert len(trace) == 6
    assert trace.total_seconds == pytest.approx(run.total_kernel_seconds)
    assert trace.trial_seed == 2
    for timing, dispatch in zip(trace, run.dispatches):
        assert timing.seconds == dispatch.time_seconds
        assert timing.kernel_name == dispatch.kernel_name


def test_record_captures_everything(tiny_app):
    recording, run = record(tiny_app, trial_seed=0)
    assert recording.call_count == len(tiny_app.host_program)
    assert set(recording.sources) == set(tiny_app.sources)
    assert recording.recorded_on == HD4000.name
    assert len(run.dispatches) == 6


def test_replay_preserves_api_ordering(tiny_app):
    recording, original = record(tiny_app, trial_seed=0)
    replayed = replay(recording, trial_seed=5)
    assert [c.name for c in replayed.api_calls] == [
        c.name for c in original.api_calls
    ]
    assert len(replayed.dispatches) == len(original.dispatches)
    assert [d.kernel_name for d in replayed.dispatches] == [
        d.kernel_name for d in original.dispatches
    ]


def test_replay_with_same_seed_reproduces_times(tiny_app):
    recording, original = record(tiny_app, trial_seed=3)
    replayed = replay(recording, trial_seed=3)
    assert replayed.total_kernel_seconds == pytest.approx(
        original.total_kernel_seconds
    )


def test_replay_with_new_seed_varies_times(tiny_app):
    recording, original = record(tiny_app, trial_seed=3)
    replayed = replay(recording, trial_seed=4)
    assert replayed.total_kernel_seconds != pytest.approx(
        original.total_kernel_seconds
    )


def test_replay_on_other_architecture(tiny_app):
    recording, _ = record(tiny_app)
    replayed = replay(recording, device_spec=HD4600, trial_seed=1)
    assert replayed.device_name == HD4600.name
    assert len(replayed.dispatches) == 6


def test_replay_timings_helper(tiny_app):
    recording, _ = record(tiny_app)
    trace = replay_timings(recording, trial_seed=9)
    assert len(trace) == 6
    assert trace.trial_seed == 9


def test_recording_is_an_application(tiny_app):
    """Recordings satisfy the Application protocol: GT-Pin can profile them."""
    from repro.gtpin.profiler import profile

    recording, _ = record(tiny_app)
    profiled = profile(recording)
    assert profiled.report["instructions"].kernel_invocations == 6
