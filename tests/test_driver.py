"""GPU driver: JIT, binary cache, rewriter hook placement."""

import numpy as np
import pytest

from repro.driver.driver import GPUDriver
from repro.driver.jit import JITCompiler, KernelSource
from repro.gpu.device import HD4000
from repro.gpu.execution import GPUDevice
from repro.opencl.errors import InvalidKernelName

from conftest import build_tiny_kernel


def _driver():
    return GPUDriver(GPUDevice(HD4000))


def _sources():
    kernel = build_tiny_kernel("k")
    return {"k": KernelSource(name="k", body=kernel)}


def test_kernel_source_name_must_match_body():
    kernel = build_tiny_kernel("k")
    with pytest.raises(ValueError, match="does not match"):
        KernelSource(name="other", body=kernel)


def test_jit_stamps_metadata():
    source = _sources()["k"]
    binary = JITCompiler().compile(source)
    assert binary.metadata["jit.compiled"] is True
    assert binary.name == "k"


def test_jit_does_not_mutate_source():
    source = _sources()["k"]
    JITCompiler().compile(source)
    assert "jit.compiled" not in source.body.metadata


def test_build_program_caches_binaries():
    driver = _driver()
    driver.build_program(_sources())
    assert driver.binary("k").metadata["jit.compiled"] is True


def test_unknown_binary_raises():
    driver = _driver()
    driver.build_program(_sources())
    with pytest.raises(InvalidKernelName, match="has not been built"):
        driver.binary("missing")


def test_dispatch_executes_on_device():
    driver = _driver()
    driver.build_program(_sources())
    dispatch = driver.dispatch("k", {"iters": 3.0, "n": 64.0}, 64,
                               np.random.default_rng(0))
    assert dispatch.kernel_name == "k"
    assert dispatch.instruction_count > 0
    assert len(driver.device.dispatch_log) == 1


def test_rewriter_applied_at_build_time():
    driver = _driver()
    calls = []

    def rewriter(binary):
        calls.append(binary.name)
        return binary.with_blocks(binary.blocks, {"rewritten": True})

    driver.install_rewriter(rewriter)
    driver.build_program(_sources())
    assert calls == ["k"]
    assert driver.binary("k").metadata["rewritten"] is True


def test_installing_rewriter_invalidates_cache():
    driver = _driver()
    driver.build_program(_sources())
    driver.install_rewriter(lambda b: b)
    with pytest.raises(InvalidKernelName):
        driver.binary("k")  # must be rebuilt under the rewriter


def test_removing_rewriter_invalidates_cache():
    driver = _driver()
    driver.install_rewriter(lambda b: b)
    driver.build_program(_sources())
    driver.install_rewriter(None)
    assert not driver.rewriter_installed
    with pytest.raises(InvalidKernelName):
        driver.binary("k")
