"""Characterization study drivers and text renderers."""

import pytest

from repro.analysis.characterize import (
    SuiteCharacterization,
    characterize_app,
    characterize_suite,
)
from repro.analysis.render import (
    figure3a_api_calls,
    figure3b_structures,
    figure3c_dynamic_work,
    figure4a_instruction_mixes,
    figure4b_simd_widths,
    figure4c_memory_activity,
    render_table,
    table1_suite,
    table2_interval_space,
)
from repro.sampling.intervals import interval_space_summary
from repro.workloads.suite import SUITE_SPECS


@pytest.fixture(scope="module")
def chars(small_app):
    a = characterize_app(small_app, trial_seed=0)
    return SuiteCharacterization(apps=(a,))


def test_characterize_app_consistency(small_app, chars):
    (a,) = chars.apps
    assert a.name == small_app.name
    assert a.api.total_calls == len(small_app.host_program)
    assert a.structure.unique_kernels == len(small_app.sources)
    assert a.instructions.kernel_invocations == small_app.spec.n_invocations
    assert a.opcode_mix.total_dynamic == a.instructions.dynamic_instructions
    assert a.simd.total_dynamic == a.instructions.dynamic_instructions
    assert a.total_kernel_seconds > 0


def test_suite_aggregates(chars):
    assert 0 < chars.mean_kernel_call_fraction() < 1
    assert 0 < chars.mean_sync_call_fraction() < 1
    assert chars.mean_unique_kernels() == 4
    assert chars.mean_dynamic_instructions() > 0
    mix = chars.suite_mix_fractions()
    assert sum(mix.values()) == pytest.approx(1.0)
    simd = chars.suite_simd_fractions()
    assert sum(simd.values()) == pytest.approx(1.0)


def test_characterize_suite_multiple(small_app):
    suite = characterize_suite([small_app, small_app])
    assert len(suite) == 2


def test_apps_using_width(chars):
    assert chars.apps_using_width(16) == [chars.apps[0].name]
    assert chars.apps_using_width(2) == []


def test_render_table_alignment():
    text = render_table("T", ["A", "Blong"], [["x", 1], ["yy", 22]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "A" in lines[2] and "Blong" in lines[2]
    assert len(lines) == 6


def test_figure_renderers_include_average_row(chars):
    for renderer in (
        figure3a_api_calls,
        figure3b_structures,
        figure3c_dynamic_work,
        figure4a_instruction_mixes,
        figure4b_simd_widths,
        figure4c_memory_activity,
    ):
        text = renderer(chars)
        assert "AVERAGE" in text
        assert chars.apps[0].name in text


def test_table1_lists_all_25_apps():
    text = table1_suite(SUITE_SPECS)
    for spec in SUITE_SPECS:
        assert spec.name in text


def test_table2_renderer(small_workload):
    rows = interval_space_summary([small_workload.log], 200_000)
    text = table2_interval_space(rows)
    assert "Synchronization calls" in text
    assert "Single kernel boundaries" in text


def test_run_full_study_smoke(monkeypatch):
    """A miniature end-to-end study over a 2-app suite."""
    import repro.analysis.study as study_module
    from repro.analysis.study import render_study, run_full_study
    from repro.sampling.simpoint import SimPointOptions
    from repro.workloads.suite import load_app

    def tiny_suite(scale=1.0, seed=0):
        return [
            load_app("cb-gaussian-image", scale=scale, seed=seed),
            load_app("cb-gaussian-buffer", scale=scale, seed=seed),
        ]

    monkeypatch.setattr(study_module, "load_suite", tiny_suite)
    results = run_full_study(
        scale=0.5,
        options=SimPointOptions(max_k=4, restarts=1, max_iterations=30),
        validation_trials=(2,),
    )
    assert len(results.workloads) == 2
    assert len(results.explorations) == 2
    assert len(results.cross_trial) == 2
    assert len(results.sweep) == 12  # min-error + 11 thresholds
    text = render_study(results)
    for marker in (
        "Table I", "Figure 3a", "Figure 4c", "Table II", "Figure 6",
        "Figure 7", "Figure 8 (top)", "Figure 8 (bottom)",
    ):
        assert marker in text
