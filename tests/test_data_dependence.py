"""Input-data-dependent control flow: the device-memory complexity stream.

The host writes scene-complexity values to device buffers
(``clEnqueueWriteBuffer``); kernels with data-dependent tails loop on
them.  Crucially the values are *not* kernel arguments, so KN-family
feature vectors cannot see them while BB-family vectors can -- the
mechanism behind the paper's "basic block features outperform kernel
features" observation.
"""

import dataclasses

import pytest

from repro.gtpin.profiler import build_runtime
from repro.opencl.api import KERNEL_ENQUEUE, APICall
from repro.opencl.host_program import HostProgram
from repro.sampling.features import FeatureKind, feature_vector
from repro.sampling.intervals import single_kernel_intervals
from repro.workloads.generator import generate_application

from conftest import SMALL_SPEC, TinyApplication, build_tiny_kernel
from repro.isa.builder import KernelBuilder
from repro.isa.program import TripCount


def _data_kernel(name="dk"):
    """A kernel whose inner loop trips on the device-memory complexity."""
    kb = KernelBuilder(name, simd_width=16, arg_names=("iters", "n"))
    with kb.block("prologue") as b:
        b.mov(exec_size=1)
    with kb.loop(TripCount(base=0, arg="iters", scale=1.0)):
        with kb.block("head") as b:
            b.alu("add")
        with kb.loop(TripCount(base=1, arg="__complexity", scale=1.0)):
            with kb.block("data_tail") as b:
                b.alu("mul")
                b.load()
    with kb.block("epilogue") as b:
        b.control("ret")
    return kb.build()


def _program_with_complexity(values):
    calls = [
        APICall("clBuildProgram"),
        APICall("clCreateKernel", {"kernel": "dk"}),
        APICall("clSetKernelArg", {"kernel": "dk", "arg_index": 0, "value": 3.0}),
        APICall("clSetKernelArg", {"kernel": "dk", "arg_index": 1, "value": 64.0}),
    ]
    for value in values:
        calls.append(
            APICall("clEnqueueWriteBuffer", {"__complexity": value})
        )
        calls.append(
            APICall(KERNEL_ENQUEUE, {"kernel": "dk", "global_work_size": 64})
        )
        calls.append(APICall("clFinish"))
    return HostProgram(name="data-app", calls=tuple(calls))


class _DataApp:
    def __init__(self):
        from repro.driver.jit import KernelSource

        kernel = _data_kernel()
        self.name = "data-app"
        self.sources = {"dk": KernelSource(name="dk", body=kernel)}
        self.host_program = _program_with_complexity([1.0, 5.0])


def test_complexity_changes_dynamic_work():
    app = _DataApp()
    run = build_runtime(app).run(app.host_program)
    low, high = run.dispatches
    # Same kernel, same args, same gws -- different input complexity.
    assert low.arg_values == high.arg_values
    assert high.instruction_count > low.instruction_count


def test_complexity_not_visible_in_arg_values():
    app = _DataApp()
    run = build_runtime(app).run(app.host_program)
    for dispatch in run.dispatches:
        assert "__complexity" not in dispatch.arg_values
        assert dispatch.data_env.get("__complexity") in (1.0, 5.0)


def test_kernel_argument_overrides_data_env_on_collision():
    """Argument names always win over device-memory keys."""
    kernel = build_tiny_kernel("k")
    app = TinyApplication([kernel], [("k", 64, 2.0)])
    runtime = build_runtime(app)
    # Write a colliding key: arg "iters" must still come from SetKernelArg.
    calls = list(app.host_program.calls)
    calls.insert(5, APICall("clEnqueueWriteBuffer", {"__iters": 99.0}))
    run = runtime.run(HostProgram(name="x", calls=tuple(calls)))
    assert run.dispatches[0].arg_values["iters"] == 2.0


def test_bb_features_see_complexity_kn_args_do_not():
    """The discriminating experiment: two invocations identical in kernel,
    args and gws but different input data must produce identical KN-ARGS
    vectors and different BB vectors."""
    from repro.gtpin.profiler import GTPinSession
    from repro.gtpin.tools import InvocationLogTool

    app = _DataApp()
    session = GTPinSession([InvocationLogTool()])
    runtime = build_runtime(app, session=session)
    runtime.run(app.host_program)
    log = session.post_process()["invocations"]
    intervals = single_kernel_intervals(log)
    assert len(intervals) == 2

    kn_args_low = feature_vector(log, intervals[0], FeatureKind.KN_ARGS)
    kn_args_high = feature_vector(log, intervals[1], FeatureKind.KN_ARGS)
    assert set(kn_args_low) == set(kn_args_high)  # same event keys

    bb_low = feature_vector(log, intervals[0], FeatureKind.BB)
    bb_high = feature_vector(log, intervals[1], FeatureKind.BB)
    data_tail_key = ("bb", "dk", 2)
    assert bb_high[data_tail_key] > bb_low[data_tail_key]


def test_generated_apps_have_data_dependent_kernels():
    app = generate_application(SMALL_SPEC, seed=7)
    scales = [
        src.body.metadata["shape"].data_scale
        for src in app.sources.values()
    ]
    assert any(s > 0 for s in scales)


def test_data_dependence_can_be_disabled():
    spec = dataclasses.replace(SMALL_SPEC, data_dependence=0.0)
    app = generate_application(spec, seed=7)
    scales = [
        src.body.metadata["shape"].data_scale
        for src in app.sources.values()
    ]
    assert all(s == 0 for s in scales)


def test_complexity_writes_present_in_generated_hosts():
    app = generate_application(SMALL_SPEC, seed=7)
    complexity_writes = [
        call
        for call in app.host_program
        if call.name in ("clEnqueueWriteBuffer", "clEnqueueWriteImage")
        and "__complexity" in call.args
    ]
    assert len(complexity_writes) >= SMALL_SPEC.n_phases


def test_invocation_profiles_carry_data_items(small_workload):
    assert any(p.data_items for p in small_workload.log.invocations)
    for profile in small_workload.log.invocations:
        for key, _ in profile.data_items:
            assert key.startswith("__")
