"""Phase timelines and projection confidence bounds."""

import numpy as np
import pytest

from repro.analysis.phases import PhaseTimeline, phase_timeline
from repro.sampling.confidence import projection_confidence
from repro.sampling.error import arrays_from_profile, measured_spi
from repro.sampling.features import FeatureKind, build_feature_vectors
from repro.sampling.intervals import Interval, IntervalScheme, divide
from repro.sampling.selection import SelectionConfig, selection_from_simpoint
from repro.sampling.simpoint import (
    SimPointOptions,
    SimPointResult,
    run_simpoint,
)

FAST = SimPointOptions(max_k=5, restarts=1, max_iterations=30)


def _fake_result(labels, k):
    labels = np.asarray(labels)
    reps = []
    ratios = []
    for cluster in range(k):
        members = np.nonzero(labels == cluster)[0]
        reps.append(int(members[0]))
        ratios.append(members.size / labels.size)
    return SimPointResult(
        k=k,
        labels=labels,
        representatives=tuple(reps),
        representation_ratios=tuple(ratios),
        bic_by_k={},
        projected=np.zeros((labels.size, 2)),
    )


def _intervals(weights):
    intervals = []
    start = 0
    for i, w in enumerate(weights):
        intervals.append(
            Interval(index=i, start=start, stop=start + 1,
                     instruction_count=w)
        )
        start += 1
    return intervals


class TestPhaseTimeline:
    def test_run_length_encoding(self):
        intervals = _intervals([100] * 6)
        result = _fake_result([0, 0, 1, 1, 1, 0], 2)
        timeline = phase_timeline(intervals, result)
        assert [s.cluster for s in timeline.segments] == [0, 1, 0]
        assert timeline.segments[1].first_interval == 2
        assert timeline.segments[1].last_interval == 4
        assert timeline.n_transitions == 2

    def test_segment_instruction_weights(self):
        intervals = _intervals([10, 20, 30, 40])
        result = _fake_result([0, 0, 1, 1], 2)
        timeline = phase_timeline(intervals, result)
        assert timeline.segments[0].instruction_count == 30
        assert timeline.segments[1].instruction_count == 70
        assert timeline.dominant_cluster() == 1

    def test_render_proportional(self):
        intervals = _intervals([75, 25])
        result = _fake_result([0, 1], 2)
        text = phase_timeline(intervals, result).render(width=40)
        assert text.count("0") > text.count("1") > 0

    def test_stability_bounds(self):
        stable = phase_timeline(
            _intervals([1] * 8), _fake_result([0] * 8, 1)
        )
        thrash = phase_timeline(
            _intervals([1] * 8), _fake_result([0, 1] * 4, 2)
        )
        assert stable.stability() == 1.0
        assert thrash.stability() < stable.stability()

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            phase_timeline(_intervals([1, 1, 1]), _fake_result([0, 0], 1))

    def test_real_clustering_timeline(self, small_workload):
        log = small_workload.log
        intervals = divide(log, IntervalScheme.SYNC)
        vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
        result = run_simpoint(
            vectors, [iv.instruction_count for iv in intervals], FAST
        )
        timeline = phase_timeline(intervals, result)
        assert sum(s.n_intervals for s in timeline.segments) == len(intervals)
        assert timeline.total_instructions == log.total_instructions
        assert timeline.render()


class TestProjectionConfidence:
    @pytest.fixture(scope="class")
    def pipeline(self, small_workload):
        log = small_workload.log
        intervals = divide(log, IntervalScheme.SYNC)
        vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
        result = run_simpoint(
            vectors, [iv.instruction_count for iv in intervals], FAST
        )
        selection = selection_from_simpoint(
            SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
            intervals, result, log.total_instructions,
        )
        seconds, instructions = arrays_from_profile(
            log, small_workload.timings
        )
        return selection, intervals, result, seconds, instructions

    def test_interval_contains_projection(self, pipeline):
        selection, intervals, result, seconds, instructions = pipeline
        conf = projection_confidence(
            selection, intervals, result.labels, seconds, instructions
        )
        assert conf.lower <= conf.projected_spi <= conf.upper
        assert conf.half_width >= 0

    def test_interval_usually_covers_measured(self, pipeline):
        selection, intervals, result, seconds, instructions = pipeline
        conf = projection_confidence(
            selection, intervals, result.labels, seconds, instructions,
            z=2.5,
        )
        assert conf.contains(measured_spi(seconds, instructions))

    def test_wider_z_wider_interval(self, pipeline):
        selection, intervals, result, seconds, instructions = pipeline
        narrow = projection_confidence(
            selection, intervals, result.labels, seconds, instructions, z=1.0
        )
        wide = projection_confidence(
            selection, intervals, result.labels, seconds, instructions, z=3.0
        )
        assert wide.half_width >= narrow.half_width
        assert wide.projected_spi == pytest.approx(narrow.projected_spi)

    def test_cluster_spreads_reported(self, pipeline):
        selection, intervals, result, seconds, instructions = pipeline
        conf = projection_confidence(
            selection, intervals, result.labels, seconds, instructions
        )
        assert len(conf.clusters) == selection.k
        assert all(c.n_intervals >= 1 for c in conf.clusters)
        assert all(c.relative_spread >= 0 for c in conf.clusters)

    def test_validation(self, pipeline):
        selection, intervals, result, seconds, instructions = pipeline
        with pytest.raises(ValueError, match="z must be positive"):
            projection_confidence(
                selection, intervals, result.labels, seconds, instructions,
                z=0.0,
            )
        with pytest.raises(ValueError, match="labels"):
            projection_confidence(
                selection, intervals, result.labels[:-1], seconds,
                instructions,
            )


def test_structure_report_source_lines(small_workload):
    from repro.gtpin.profiler import GTPinSession, build_runtime
    from repro.gtpin.tools import StructureTool
    from repro.workloads.suite import load_app

    app = load_app("cb-gaussian-buffer", scale=0.5)
    session = GTPinSession([StructureTool()])
    runtime = build_runtime(app, session=session)
    runtime.run(app.host_program)
    report = session.post_process()["structure"]
    assert report.source_lines > 0
    assert report.assembly_per_source_line > 1.0  # JIT expands source
    assert set(report.per_kernel_source_lines) == set(
        report.per_kernel_blocks
    )
