"""Selections: ratios, sizes, speedups, config labels."""

import pytest

from repro.sampling.features import FeatureKind
from repro.sampling.intervals import Interval, IntervalScheme, divide
from repro.sampling.selection import (
    SelectedInterval,
    Selection,
    SelectionConfig,
    selection_from_simpoint,
)
from repro.sampling.simpoint import run_simpoint
from repro.sampling.features import build_feature_vectors


def _interval(index=0, start=0, stop=1, instr=100):
    return Interval(index=index, start=start, stop=stop,
                    instruction_count=instr)


def _selection(ratios=(0.6, 0.4), instrs=(100, 300), total=1000):
    selected = tuple(
        SelectedInterval(
            interval=_interval(i, i * 10, i * 10 + 5, instr),
            ratio=ratio,
        )
        for i, (ratio, instr) in enumerate(zip(ratios, instrs))
    )
    return Selection(
        config=SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        selected=selected,
        total_instructions=total,
        n_intervals=50,
        total_invocations=500,
    )


def test_config_labels_match_figure6_style():
    assert SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB).label == "Sync-BB"
    assert (
        SelectionConfig(IntervalScheme.APPROX_100M, FeatureKind.KN_ARGS).label
        == "100M-KN-ARGS"
    )
    assert (
        SelectionConfig(
            IntervalScheme.SINGLE_KERNEL, FeatureKind.BB_R_PLUS_W
        ).label
        == "Single-BB-(R+W)"
    )


def test_selection_size_and_speedup():
    selection = _selection(instrs=(100, 300), total=1000)
    assert selection.selected_instructions == 400
    assert selection.selection_fraction == pytest.approx(0.4)
    assert selection.simulation_speedup == pytest.approx(2.5)


def test_selection_k():
    assert _selection().k == 2


def test_invocation_indices():
    selection = _selection()
    indices = selection.invocation_indices()
    assert indices == list(range(0, 5)) + list(range(10, 15))


def test_ratio_validation():
    with pytest.raises(ValueError):
        SelectedInterval(interval=_interval(), ratio=0.0)
    with pytest.raises(ValueError):
        SelectedInterval(interval=_interval(), ratio=1.5)


def test_empty_selection_rejected():
    with pytest.raises(ValueError, match="at least one interval"):
        Selection(
            config=SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
            selected=(),
            total_instructions=10,
            n_intervals=5,
            total_invocations=5,
        )


def test_selection_from_simpoint_end_to_end(small_workload):
    log = small_workload.log
    intervals = divide(log, IntervalScheme.SYNC)
    vectors = build_feature_vectors(log, intervals, FeatureKind.BB)
    result = run_simpoint(
        vectors, [iv.instruction_count for iv in intervals]
    )
    config = SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB)
    selection = selection_from_simpoint(
        config, intervals, result, log.total_instructions
    )
    assert selection.k == result.k
    assert selection.total_invocations == len(log.invocations)
    assert 0 < selection.selection_fraction <= 1
    assert sum(s.ratio for s in selection.selected) == pytest.approx(1.0)
    # Selected intervals are genuine members of the division.
    for s in selection.selected:
        assert intervals[s.interval.index] is s.interval
