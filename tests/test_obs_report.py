"""repro.obs.report: the self-contained HTML run report."""

import types

import pytest

from repro import telemetry
from repro.cli import main
from repro.faults.health import HEALTHY, ProfileHealth
from repro.obs import events as obs_events
from repro.obs.report import render_report, write_report


@pytest.fixture
def tm():
    registry = telemetry.enable()
    yield registry
    telemetry.disable()


@pytest.fixture
def log():
    active = obs_events.enable()
    yield active
    obs_events.disable()


def _recorded(tm, log):
    with tm.span("root", category="cli"):
        with tm.span("work", category="sampling"):
            tm.inc("demo.counter", 7)
            tm.observe("demo.gauge_bytes", 1024)
            for v in (0.001, 0.004, 0.016, 0.064):
                tm.observe_hist("demo.latency_seconds", v, "s")
            log.info("demo.started", app="x")
            log.warn("fault.injected", site="jit.build", ordinal=0)


def test_report_is_self_contained_html(tm, log):
    _recorded(tm, log)
    html = render_report(tm, log=log, title="unit test <run>")
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    # Self-contained: no external fetches of any kind.
    assert "http://" not in html and "https://" not in html
    assert "<script" not in html
    assert "unit test &lt;run&gt;" in html  # titles are escaped


def test_report_sections_cover_run_state(tm, log):
    _recorded(tm, log)
    html = render_report(tm, log=log)
    assert "Span timeline" in html and "<svg" in html and "<rect" in html
    assert "demo.latency_seconds" in html
    for column in ("p50", "p90", "p99"):
        assert column in html
    assert "demo.counter" in html
    assert "demo.gauge_bytes" in html
    assert "Faults and health" in html
    assert "fault.injected" in html  # WARN incidents are listed
    assert "Event log" in html


def test_report_without_events_or_study(tm):
    with tm.span("only", category="t"):
        tm.observe_hist("h.seconds", 0.5, "s")
    html = render_report(tm)
    assert "no events recorded" in html
    assert "Table I" not in html


def test_report_timeline_caps_span_count(tm):
    for _ in range(900):
        with tm.span("tick", category="t"):
            pass
    html = render_report(tm)
    assert html.count("<rect") <= 800


def _fake_study(health=HEALTHY):
    # len() goes through the class, so build a tiny log type.
    class _Log:
        total_instructions = 12345

        def __len__(self):
            return 42

    workload = types.SimpleNamespace(log=_Log(), health=health)
    selection = types.SimpleNamespace(
        config=types.SimpleNamespace(label="Sync-BB"),
        simulation_speedup=53.0,
    )
    result = types.SimpleNamespace(
        selection=selection,
        error_percent=1.5,
        config=selection.config,
    )
    return types.SimpleNamespace(
        scale=0.1,
        device="HD4000",
        workloads={"cb-gaussian-buffer": workload},
        explorations={
            "cb-gaussian-buffer": types.SimpleNamespace(health=None)
        },
        error_minimizing=[("cb-gaussian-buffer", result)],
    )


def test_report_table1_rows(tm, log):
    _recorded(tm, log)
    html = render_report(tm, log=log, study=_fake_study())
    assert "Per-workload statistics (Table I)" in html
    assert "cb-gaussian-buffer" in html
    assert "Sync-BB" in html
    assert "53.0x" in html
    assert "1.50" in html


def test_report_flags_partial_profiles(tm, log):
    damaged = ProfileHealth(lost_events=3)
    html = render_report(tm, log=log, study=_fake_study(damaged))
    assert "lost_events:3" in html
    assert "partial" in html


def test_write_report(tm, log, tmp_path):
    _recorded(tm, log)
    out = tmp_path / "run.html"
    write_report(str(out), tm, log=log)
    assert out.read_text().startswith("<!DOCTYPE html>")


@pytest.mark.slow
def test_cli_explore_with_report_flag(tmp_path, capsys):
    out = tmp_path / "explore.html"
    assert main(
        ["explore", "cb-gaussian-buffer", "--scale", "0.1",
         "--report", str(out)]
    ) == 0
    assert f"(HTML run report written to {out})" in capsys.readouterr().out
    html = out.read_text()
    assert "Span timeline" in html
    assert "opencl.dispatch_seconds" in html
    assert "sampling.config_seconds" in html
    # Registries are restored after the run.
    assert not telemetry.get().enabled
    assert not obs_events.is_enabled()


@pytest.mark.slow
def test_cli_trace_style_report_under_faults(tmp_path, capsys):
    """--report composes with --faults: incidents land in the report."""
    out = tmp_path / "faulted.html"
    assert main(
        ["select", "cb-gaussian-buffer", "--scale", "0.2",
         "--faults", "seed=11;event.lost=0.3",
         "--report", str(out)]
    ) == 0
    html = out.read_text()
    assert "Faults and health" in html
    assert "fault.injected" in html
