"""Binary rewriter: probe injection, originals preserved, trace output."""

import numpy as np
import pytest

from repro.gpu.device import HD4000
from repro.gpu.execution import (
    ON_EXECUTE_HOOK_KEY,
    ORIGINAL_BINARY_KEY,
    GPUDevice,
)
from repro.gtpin.instrumentation import Capability
from repro.gtpin.rewriter import GTPinRewriter
from repro.gtpin.trace_buffer import TraceBuffer

from conftest import build_tiny_kernel


def _rewriter(caps={Capability.BLOCK_COUNTS}):
    return GTPinRewriter(frozenset(caps), TraceBuffer())


def test_rewrite_adds_probe_instructions():
    kernel = build_tiny_kernel()
    rewritten = _rewriter().rewrite(kernel)
    assert (
        rewritten.static_instruction_count > kernel.static_instruction_count
    )
    # Every block begins with the counter probe (scratch load).
    for block in rewritten.blocks:
        assert block.instructions[0].is_instrumentation


def test_original_untouched():
    kernel = build_tiny_kernel()
    before = kernel.static_instruction_count
    _rewriter().rewrite(kernel)
    assert kernel.static_instruction_count == before
    assert not any(
        i.is_instrumentation for b in kernel.blocks for i in b.instructions
    )


def test_rewrite_preserves_block_ids_and_program():
    kernel = build_tiny_kernel()
    rewritten = _rewriter().rewrite(kernel)
    assert [b.block_id for b in rewritten.blocks] == [
        b.block_id for b in kernel.blocks
    ]
    assert rewritten.program is kernel.program


def test_metadata_links_original_and_hook():
    kernel = build_tiny_kernel()
    rewriter = _rewriter()
    rewritten = rewriter.rewrite(kernel)
    assert rewritten.metadata[ORIGINAL_BINARY_KEY] is kernel
    assert callable(rewritten.metadata[ON_EXECUTE_HOOK_KEY])
    assert rewriter.original_binaries["tiny"] is kernel


def test_double_instrumentation_rejected():
    kernel = build_tiny_kernel()
    rewriter = _rewriter()
    rewritten = rewriter.rewrite(kernel)
    with pytest.raises(ValueError, match="already instrumented"):
        rewriter.rewrite(rewritten)


def test_timers_capability_adds_boundary_probes():
    kernel = build_tiny_kernel()
    rewritten = _rewriter({Capability.TIMERS}).rewrite(kernel)
    assert rewritten.blocks[0].instructions[0].is_instrumentation
    assert rewritten.blocks[-1].instructions[-1].is_instrumentation


def test_memory_trace_instruments_sends():
    kernel = build_tiny_kernel()
    original_sends = sum(
        1 for b in kernel.blocks for i in b if i.is_send
    )
    rewritten = _rewriter(
        {Capability.BLOCK_COUNTS, Capability.MEMORY_TRACE}
    ).rewrite(kernel)
    instrumented_sends = sum(
        1
        for b in rewritten.blocks
        for i in b
        if i.is_send and i.is_instrumentation
    )
    # One trace-emit send per original send, plus counter flush sends.
    assert instrumented_sends >= original_sends


def test_executing_rewritten_binary_writes_trace_records():
    kernel = build_tiny_kernel()
    rewriter = _rewriter()
    rewritten = rewriter.rewrite(kernel)
    device = GPUDevice(HD4000)
    device.execute(rewritten, {"iters": 3.0, "n": 64.0}, 64,
                   np.random.default_rng(0))
    records = rewriter.trace_buffer.drain()
    assert len(records) == 1
    record = records[0]
    assert record.kernel_name == "tiny"
    assert record.block_counts.shape == (kernel.n_blocks,)
    assert record.block_counts.sum() > 0


def test_trace_record_counts_match_original_blocks():
    """Counters index original block ids: dynamic stats recompute exactly."""
    kernel = build_tiny_kernel()
    rewriter = _rewriter()
    rewritten = rewriter.rewrite(kernel)
    device = GPUDevice(HD4000)
    # Execute the *original* with the same seed for ground truth.
    truth = GPUDevice(HD4000).execute(
        kernel, {"iters": 3.0, "n": 64.0}, 64, np.random.default_rng(9)
    )
    device.execute(rewritten, {"iters": 3.0, "n": 64.0}, 64,
                   np.random.default_rng(9))
    record = rewriter.trace_buffer.drain()[0]
    recomputed = int(record.block_counts @ kernel.arrays.instruction_counts)
    assert recomputed == truth.instruction_count


def test_empty_capability_set_still_observes():
    kernel = build_tiny_kernel()
    rewriter = GTPinRewriter(frozenset(), TraceBuffer())
    rewritten = rewriter.rewrite(kernel)
    # No probes injected...
    assert (
        rewritten.static_instruction_count == kernel.static_instruction_count
    )
    # ...but dispatches are still recorded via the hook.
    GPUDevice(HD4000).execute(rewritten, {"iters": 1.0, "n": 64.0}, 64,
                              np.random.default_rng(0))
    assert len(rewriter.trace_buffer) == 1
