"""Live observability: streaming deltas, the hub, the endpoint, gtpin top.

The conservation properties here are the load-bearing ones: heartbeat
deltas ship *cumulative* per-series state with per-source sequence
numbers, so the receiver-side merge must be idempotent, order
independent, and bit-exact against the worker registry's final values.
The endpoint tests then assert the acceptance criterion end to end: the
scraped totals equal the end-of-run merged telemetry exactly.
"""

import io
import json
import os
import queue
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, telemetry
from repro.faults import FaultPlan
from repro.gpu.device import HD4000
from repro.obs import events as obs_events
from repro.obs import live
from repro.obs.metrics import metric_name, parse_exposition
from repro.obs.top import render_top, run_top
from repro.parallel.pool import WORKER_ENV, _run_task, parallel_map
from repro.sampling.pipeline import profile_workload
from repro.telemetry.registry import Telemetry
from repro.telemetry.snapshot import DeltaAccumulator, DeltaTracker
from repro.workloads import load_app


@pytest.fixture
def hub():
    active = live.enable()
    yield active
    live.disable()


@pytest.fixture
def served_hub():
    active = live.enable(port=0)
    yield active
    live.disable()


def _url(hub, path):
    return f"http://127.0.0.1:{hub.server.port}{path}"


def _get(hub, path):
    with urllib.request.urlopen(_url(hub, path), timeout=5) as response:
        return response.read().decode()


# -- delta conservation properties -------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["inc", "gauge", "hist"]),
        st.sampled_from(["alpha", "beta", "gamma"]),
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


def _apply_ops(tm, ops):
    for kind, name, value in ops:
        if kind == "inc":
            tm.inc(name, value)
        elif kind == "gauge":
            tm.observe(name, value)
        else:
            tm.observe_hist(name, value, "u")


def _capture_all(tm, tracker, ops, n_chunks):
    """Apply ``ops`` in ``n_chunks`` slices, capturing after each."""
    deltas = []
    size = max(1, len(ops) // n_chunks)
    for start in range(0, len(ops), size):
        _apply_ops(tm, ops[start:start + size])
        delta = tracker.capture(tm)
        if delta is not None:
            deltas.append(delta)
    final = tracker.capture(tm, final=True)
    if final is not None:
        deltas.append(final)
    return deltas


def _assert_conserves(acc, tm):
    """Accumulator totals must equal the registry's finals bit-exactly."""
    assert acc.counter_totals() == {
        name: c.value for name, c in tm.counters.counters.items()
    }
    gauges = acc.gauge_totals()
    assert set(gauges) == set(tm.counters.gauges)
    for name, gauge in tm.counters.gauges.items():
        got = gauges[name]
        assert (got.count, got.total, got.minimum, got.maximum) == (
            gauge.count, gauge.total, gauge.minimum, gauge.maximum
        )
        assert got.last == gauge.last
    hists = acc.histogram_totals()
    assert set(hists) == set(tm.counters.histograms)
    for name, hist in tm.counters.histograms.items():
        got = hists[name]
        assert (got.count, got.total, got.minimum, got.maximum) == (
            hist.count, hist.total, hist.minimum, hist.maximum
        )
        assert got.buckets == hist.buckets


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, data=st.data())
def test_delta_merge_is_exact_idempotent_and_order_independent(ops, data):
    tm = Telemetry()
    tracker = DeltaTracker("w0")
    deltas = _capture_all(
        tm, tracker, ops, n_chunks=data.draw(st.integers(1, 5))
    )
    assert deltas, "final capture must always produce a delta"

    order = data.draw(st.permutations(range(len(deltas))))
    duplicates = data.draw(
        st.lists(
            st.integers(0, len(deltas) - 1), min_size=0, max_size=5
        )
    )
    acc = DeltaAccumulator()
    for index in list(order) + duplicates:
        acc.apply(deltas[index])
    _assert_conserves(acc, tm)

    # Replaying the entire stream again changes nothing (idempotence).
    for delta in deltas:
        acc.apply(delta)
    _assert_conserves(acc, tm)


def test_delta_totals_sum_across_sources_exactly():
    acc = DeltaAccumulator()
    registries = []
    for worker in range(3):
        tm = Telemetry()
        tracker = DeltaTracker(f"w{worker}")
        _apply_ops(tm, [("inc", "jobs", 1.0 + worker)])
        tm.observe_hist("size", 2.0 * (worker + 1), "B")
        for delta in _capture_all(tm, tracker, [], 1):
            acc.apply(delta)
        registries.append(tm)
    totals = acc.counter_totals()
    assert totals["jobs"] == sum(
        r.counter_value("jobs") for r in registries
    )
    merged = acc.histogram_totals()["size"]
    assert merged.count == 3
    assert merged.minimum == 2.0
    assert merged.maximum == 6.0
    assert acc.sources() == {"w0", "w1", "w2"}
    acc.drop_source("w1")
    assert acc.counter_totals()["jobs"] == pytest.approx(1.0 + 3.0)


def test_stale_delta_never_regresses_a_newer_one():
    tm = Telemetry()
    tracker = DeltaTracker("w0")
    tm.inc("steps", 5)
    early = tracker.capture(tm)
    tm.inc("steps", 7)
    late = tracker.capture(tm, final=True)
    acc = DeltaAccumulator()
    assert acc.apply(late)
    assert not acc.apply(early)  # stale: every series already newer
    assert acc.counter_totals()["steps"] == 12.0
    assert acc.duplicates == 1


def test_tracker_ships_only_changed_series_and_event_tail():
    tm = Telemetry()
    with obs_events.session() as log:
        tracker = DeltaTracker("w0", task="demo")
        tm.inc("a")
        tm.inc("b")
        first = tracker.capture(tm, log)
        assert {c.name for c in first.counters} == {"a", "b"}
        tm.inc("a")
        log.warn("trouble", k=1)
        second = tracker.capture(tm, log)
        assert {c.name for c in second.counters} == {"a"}
        assert [e.name for e in second.events] == ["trouble"]
        assert second.seq == 1
        # Nothing changed: no heartbeat at all.
        assert tracker.capture(tm, log) is None
        final = tracker.capture(tm, log, final=True)
        assert final is not None and final.final


# -- the heartbeat path through _run_task ------------------------------------


def _noisy_task(n):
    tm = telemetry.get()
    for i in range(n):
        tm.inc("live.work")
        tm.observe_hist("live.sizes", i + 1.0, "B")
    obs_events.get().warn("live.trouble", n=n)
    return n


def test_run_task_ships_final_delta_over_the_side_channel():
    channel = queue.Queue()
    heartbeat = (channel, "src0", "noisy[0]", 0.02)
    try:
        result = _run_task(_noisy_task, (25,), True, heartbeat)
    finally:
        os.environ.pop(WORKER_ENV, None)
    assert result.value == 25
    assert result.source == "src0"
    deltas = []
    while not channel.empty():
        deltas.append(channel.get_nowait())
    assert deltas and deltas[-1].final
    acc = DeltaAccumulator()
    for delta in deltas:
        acc.apply(delta)
    assert acc.counter_totals()["live.work"] == 25.0
    hist = acc.histogram_totals()["live.sizes"]
    assert (hist.count, hist.minimum, hist.maximum) == (25, 1.0, 25.0)
    # The end-of-task snapshot carries the same finals (the delta path
    # is a preview, never a replacement).
    snap = {c.name: c.value for c in result.snapshot.counters}
    assert snap["live.work"] == 25.0


# -- hub behavior ------------------------------------------------------------


def test_hub_progress_batches_and_health(hub):
    batch = hub.begin_batch("test.batch", 4)
    hub.task_done(batch)
    hub.task_done(batch, ok=False)
    doc = hub.health_doc()
    assert doc["tasks"] == {"done": 2, "total": 4, "failed": 1}
    assert doc["status"] == "running"
    assert doc["eta_seconds"] is not None
    hub.task_done(batch)
    hub.task_done(batch)
    hub.end_batch(batch)
    doc = hub.health_doc()
    assert doc["tasks"]["done"] == 4
    assert doc["status"] == "done"
    assert doc["eta_seconds"] is None


def test_hub_merges_parent_registry_with_unretired_sources(hub):
    with telemetry.session() as tm:
        tm.inc("demo.counter", 10)
        tracker = DeltaTracker("w7")
        worker_tm = Telemetry()
        worker_tm.inc("demo.counter", 5)
        hub.apply_delta(tracker.capture(worker_tm, final=True))
        parsed = parse_exposition(hub.metrics_text())
        name = metric_name("demo.counter") + "_total"
        assert parsed[name] == 15.0
        assert [w["source"] for w in hub.health_doc()["workers"]] == ["w7"]
        # Simulate the pool's end-of-task merge + retire: no double count.
        tm.inc("demo.counter", 5)
        hub.retire_source("w7")
        parsed = parse_exposition(hub.metrics_text())
        assert parsed[name] == 15.0
        assert hub.health_doc()["workers"] == []


def test_retire_source_drops_lane_and_is_idempotent(hub):
    tracker = DeltaTracker("w1")
    worker_tm = Telemetry()
    worker_tm.inc("retire.counter", 7)
    hub.apply_delta(tracker.capture(worker_tm))
    assert [w["source"] for w in hub.health_doc()["workers"]] == ["w1"]
    hub.retire_source("w1")
    assert hub.health_doc()["workers"] == []
    name = metric_name("retire.counter") + "_total"
    assert name not in parse_exposition(hub.metrics_text())
    # Retiring again -- or a source never seen -- must be a no-op.
    hub.retire_source("w1")
    hub.retire_source("never-registered")
    assert hub.health_doc()["workers"] == []


def test_recent_events_filter_by_level(hub):
    with obs_events.session() as log:
        log.debug("lane.debug", i=1)
        log.info("lane.info", i=2)
        log.warn("lane.warn", i=3)
        log.error("lane.error", i=4)
        default_tail = hub._recent_events()
        assert [e["name"] for e in default_tail] == [
            "lane.warn", "lane.error"
        ]
        everything = hub._recent_events(min_level="DEBUG")
        assert [e["name"] for e in everything] == [
            "lane.debug", "lane.info", "lane.warn", "lane.error"
        ]
        errors_only = hub._recent_events(min_level="ERROR")
        assert [e["name"] for e in errors_only] == ["lane.error"]


def test_recent_events_merge_shipped_worker_events(hub):
    # Worker-shipped events (via the delta side channel) merge with the
    # local log and dedup exactly; the level filter applies to local
    # records at read time.
    with obs_events.session() as log:
        log.warn("merge.local")
        tracker = DeltaTracker("w2")
        worker_tm = Telemetry()
        worker_log = obs_events.EventLog()
        worker_log.error("merge.shipped")
        hub.apply_delta(tracker.capture(worker_tm, log=worker_log))
        names = [e["name"] for e in hub._recent_events()]
    assert "merge.local" in names and "merge.shipped" in names


def test_disabled_hub_is_inert():
    assert live.get() is live.DISABLED_HUB
    assert not live.is_enabled()
    assert live.get().begin_batch("x", 3) == -1
    live.get().task_done(-1)
    live.get().retire_source("nope")


# -- the HTTP endpoint -------------------------------------------------------


def test_endpoint_serves_metrics_health_and_events(served_hub):
    with telemetry.session() as tm, obs_events.session() as log:
        tm.inc("endpoint.counter", 3)
        tm.observe_hist("endpoint.sizes", 7.0, "B")
        log.warn("endpoint.warned", k=2)
        served_hub.set_command("gtpin test")

        metrics = _get(served_hub, "/metrics")
        parsed = parse_exposition(metrics)
        assert parsed[metric_name("endpoint.counter") + "_total"] == 3.0
        assert parsed[metric_name("endpoint.sizes") + "_count"] == 1.0
        assert parsed[metric_name("endpoint.sizes") + "_min"] == 7.0
        assert metric_name("uptime_seconds") in metrics

        health = json.loads(_get(served_hub, "/health"))
        assert health["command"] == "gtpin test"
        assert health["events"]["counts"]["WARN"] == 1
        assert [e["name"] for e in health["events"]["recent"]] == [
            "endpoint.warned"
        ]

        events = json.loads(_get(served_hub, "/events"))
        assert [e["name"] for e in events] == ["endpoint.warned"]

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(served_hub, "/nope")
        assert err.value.code == 404


def test_endpoint_port_zero_binds_ephemeral(served_hub):
    assert served_hub.server.port > 0


def test_resolve_port_env(monkeypatch):
    monkeypatch.delenv(live.PORT_ENV, raising=False)
    assert live.resolve_port(None) is None
    assert live.resolve_port(9000) == 9000
    monkeypatch.setenv(live.PORT_ENV, "9100")
    assert live.resolve_port(None) == 9100
    monkeypatch.setenv(live.PORT_ENV, "nope")
    with pytest.raises(ValueError):
        live.resolve_port(None)


# -- gtpin top ---------------------------------------------------------------


def _sample_health():
    return {
        "status": "running",
        "command": "gtpin explore demo",
        "uptime_seconds": 12.5,
        "tasks": {"done": 3, "total": 10, "failed": 1},
        "eta_seconds": 42.0,
        "instructions": {"total": 1.5e6, "per_second": 1.2e5},
        "hit_rates": {"gpu_cache": 0.82},
        "active_spans": [
            {"name": "sampling.explore", "category": "sampling",
             "seconds": 3.2},
        ],
        "workers": [
            {"source": "b0.t1", "task": "score[1]", "age_seconds": 0.4,
             "heartbeats": 7, "final": False},
        ],
        "events": {
            "counts": {"DEBUG": 0, "INFO": 4, "WARN": 2, "ERROR": 0},
            "dropped": 0,
            "recent": [
                {"ts_unix": 1700000000.0, "level": "WARN",
                 "name": "fault.injected", "span_id": 3, "site": "jit.build"},
            ],
        },
        "flags": ["fault.injected"],
        "faults_injected": 2,
    }


def test_render_top_is_pure_and_complete():
    frame = render_top(_sample_health())
    for expected in (
        "gtpin explore demo", "3/10", "eta 42s", "120.00k/s",
        "gpu_cache 82%", "b0.t1", "score[1]", "fault.injected",
        "faults injected: 2", "sampling.explore",
    ):
        assert expected in frame, expected
    assert "\x1b" not in frame  # frames carry no escapes; the loop does


def test_run_top_once_renders_live_endpoint(served_hub):
    with telemetry.session() as tm:
        tm.inc("gtpin.instrumented_instructions", 1000)
        served_hub.set_command("gtpin once")
        out = io.StringIO()
        status = run_top(
            port=served_hub.server.port, once=True, stream=out
        )
    assert status == 0
    assert "gtpin once" in out.getvalue()
    assert "\x1b" not in out.getvalue()


def test_run_top_once_unreachable_is_an_error():
    out = io.StringIO()
    status = run_top(port=1, once=True, stream=out)
    assert status == 1
    assert "unreachable" in out.getvalue()


def test_run_top_once_server_disconnect_is_one_line_error():
    """A server that accepts then hangs up raises RemoteDisconnected
    (an http.client.HTTPException, not OSError); --once must turn it
    into the same one-line error, never a traceback."""
    import socket
    import threading

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def accept_and_close():
        try:
            conn, _ = listener.accept()
            conn.close()
        except OSError:
            pass

    thread = threading.Thread(target=accept_and_close, daemon=True)
    thread.start()
    try:
        out = io.StringIO()
        status = run_top(port=port, once=True, stream=out)
    finally:
        listener.close()
        thread.join(timeout=5)
    assert status == 1
    text = out.getvalue()
    assert "unreachable" in text
    assert len(text.strip().splitlines()) == 1
    assert "Traceback" not in text


# -- end-to-end: jobs=2 sweep under faults vs the endpoint -------------------

FAULT_SPEC = "seed=11;event.lost=0.4;trace.truncate=0.4"


def _profile_under_faults(app_name, scale, spec):
    app = load_app(app_name, scale=scale)
    with faults.session(FaultPlan.parse(spec)):
        workload = profile_workload(app, HD4000, 0)
    return workload.health.flags


@pytest.mark.slow
def test_endpoint_totals_match_merged_telemetry_under_parallel_faults():
    tasks = [
        ("cb-gaussian-buffer", 0.1, FAULT_SPEC),
        ("cb-gaussian-image", 0.1, FAULT_SPEC),
    ]
    with telemetry.session() as tm, obs_events.session() as log:
        hub = live.enable(port=0)
        try:
            outcomes = parallel_map(
                _profile_under_faults, tasks, jobs=2, label="live.fanout"
            )
            assert all(o.ok for o in outcomes), [o.error for o in outcomes]
            assert any(o.value for o in outcomes), "no degradation flags"

            parsed = parse_exposition(_get(hub, "/metrics"))
            health = json.loads(_get(hub, "/health"))
        finally:
            live.disable()

        # Acceptance: scraped totals equal merged telemetry EXACTLY.
        for name, counter in tm.counters.counters.items():
            metric = metric_name(name) + "_total"
            assert parsed[metric] == counter.value, name
        for name, hist in tm.counters.histograms.items():
            assert parsed[metric_name(name) + "_count"] == hist.count, name
            assert parsed[metric_name(name) + "_sum"] == hist.total, name
            assert parsed[metric_name(name) + "_min"] == hist.minimum, name
            assert parsed[metric_name(name) + "_max"] == hist.maximum, name

        assert health["tasks"] == {"done": 2, "total": 2, "failed": 0}
        instructions = tm.counter_value(
            "gtpin.instrumented_instructions"
        ) + tm.counter_value("simulation.stepped_instructions")
        assert health["instructions"]["total"] == instructions
        assert health["instructions"]["per_second"] > 0

        # Fault incidents that crossed the process boundary are visible.
        warn_count = len(
            [r for r in log.records() if r.name == "fault.injected"]
        )
        assert warn_count
        assert health["events"]["counts"]["WARN"] >= warn_count
