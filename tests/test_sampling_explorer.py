"""Exploration of the 30-config space and the two selection policies."""

import pytest

from repro.sampling.explorer import (
    ALL_CONFIGS,
    evaluate_config,
    explore,
    threshold_sweep,
)
from repro.sampling.features import FeatureKind
from repro.sampling.intervals import IntervalScheme
from repro.sampling.selection import SelectionConfig
from repro.sampling.simpoint import SimPointOptions

FAST_OPTIONS = SimPointOptions(max_k=6, restarts=1, max_iterations=40)

# The 30-config exploration over the small workload is the session-scoped
# small_exploration fixture in conftest.py.


def test_thirty_configurations():
    assert len(ALL_CONFIGS) == 30
    schemes = {c.scheme for c in ALL_CONFIGS}
    features = {c.feature for c in ALL_CONFIGS}
    assert len(schemes) == 3 and len(features) == 10


def test_exploration_covers_all_configs(small_exploration):
    assert set(small_exploration.results) == set(ALL_CONFIGS)


def test_every_config_produces_valid_result(small_exploration):
    for config, result in small_exploration.results.items():
        assert result.config == config
        assert result.error_percent >= 0
        assert 0 < result.selection_fraction <= 1
        assert result.simulation_speedup >= 1


def test_minimize_error_is_minimal(small_exploration):
    best = small_exploration.minimize_error()
    assert all(
        best.error_percent <= r.error_percent
        for r in small_exploration.results.values()
    )


def test_co_optimize_respects_threshold(small_exploration):
    best_error = small_exploration.minimize_error().error_percent
    threshold = max(5.0, best_error + 1.0)
    chosen = small_exploration.co_optimize(threshold)
    assert chosen.error_percent <= threshold
    # Chosen is the smallest selection among eligible configs.
    eligible = [
        r
        for r in small_exploration.results.values()
        if r.error_percent <= threshold
    ]
    assert chosen.selection_fraction == min(
        r.selection_fraction for r in eligible
    )


def test_co_optimize_speedup_monotone_in_threshold(small_exploration):
    speedups = [
        small_exploration.co_optimize(t).simulation_speedup
        for t in (1.0, 3.0, 10.0)
    ]
    assert speedups == sorted(speedups)


def test_co_optimize_falls_back_to_min_error(small_exploration):
    """Impossible threshold -> min-error config regardless of size."""
    chosen = small_exploration.co_optimize(-1.0)
    best = small_exploration.minimize_error()
    assert chosen.error_percent == best.error_percent


def test_single_kernel_intervals_give_biggest_speedups(small_exploration):
    """Smaller intervals allow smaller selections (Section V-B trend)."""
    single = [
        r
        for c, r in small_exploration.results.items()
        if c.scheme is IntervalScheme.SINGLE_KERNEL
    ]
    sync = [
        r
        for c, r in small_exploration.results.items()
        if c.scheme is IntervalScheme.SYNC
    ]
    assert max(r.simulation_speedup for r in single) > max(
        r.simulation_speedup for r in sync
    )


def test_evaluate_single_config(small_workload):
    result = evaluate_config(
        SelectionConfig(IntervalScheme.APPROX_100M, FeatureKind.BB_R),
        small_workload.log,
        small_workload.timings,
        approx_size=150_000,
        options=FAST_OPTIONS,
    )
    assert result.config.label == "100M-BB-R"
    assert result.selection.k >= 1


def test_unweighted_features_supported(small_workload):
    result = evaluate_config(
        SelectionConfig(IntervalScheme.SYNC, FeatureKind.BB),
        small_workload.log,
        small_workload.timings,
        options=FAST_OPTIONS,
        weighted_features=False,
    )
    assert result.error_percent >= 0


def test_threshold_sweep_shape(small_exploration):
    points = threshold_sweep([small_exploration], thresholds=(1, 3, 10))
    assert len(points) == 4  # min-error + 3 thresholds
    assert points[0].threshold_percent is None
    assert points[0].label == "min-error"
    assert points[-1].label == "<= 10%"
    # Speedups never decrease as thresholds relax (single app => monotone).
    speedups = [p.mean_speedup for p in points]
    assert speedups == sorted(speedups)


def test_threshold_sweep_requires_input():
    with pytest.raises(ValueError):
        threshold_sweep([])
