"""repro.obs.events: the leveled structured event log."""

import io
import json

import pytest

from repro import faults, telemetry
from repro.faults import FaultPlan
from repro.obs import events as obs_events
from repro.obs.events import DISABLED_EVENTS, EventRecord


@pytest.fixture
def log():
    active = obs_events.enable()
    yield active
    obs_events.disable()


def test_registry_lifecycle_mirrors_telemetry():
    assert obs_events.get() is DISABLED_EVENTS
    assert not obs_events.is_enabled()
    live = obs_events.enable()
    try:
        assert obs_events.get() is live
        assert obs_events.is_enabled()
    finally:
        obs_events.disable()
    assert obs_events.get() is DISABLED_EVENTS


def test_session_restores_previous_log(log):
    log.info("outer")
    with obs_events.session() as inner:
        inner.info("inner")
        assert obs_events.get() is inner
        assert len(inner) == 1
    assert obs_events.get() is log
    assert [r.name for r in log.records()] == ["outer"]


def test_levels_and_min_level_filtering(log):
    log.debug("a")
    log.info("b")
    log.warn("c")
    log.error("d")
    assert [r.name for r in log.records()] == ["a", "b", "c", "d"]
    assert [r.name for r in log.records("WARN")] == ["c", "d"]
    assert [r.level for r in log.records("ERROR")] == ["ERROR"]
    with pytest.raises(ValueError, match="level"):
        log.emit("FATAL", "nope")


def test_fields_are_scalarized_and_ordered(log):
    log.info("evt", count=3, site="jit.build", extra=[1, 2])
    (record,) = log.records()
    fields = dict(record.fields)
    assert fields["count"] == 3
    assert fields["site"] == "jit.build"
    assert fields["extra"] == "[1, 2]"  # non-scalars stored as repr
    assert record.ts_unix > 0


def test_events_capture_the_active_span_id(log):
    tm = telemetry.enable()
    try:
        log.info("outside")
        with tm.span("work") as span:
            log.warn("inside")
        records = {r.name: r for r in log.records()}
        assert records["outside"].span_id is None
        assert records["inside"].span_id == span.span_id
    finally:
        telemetry.disable()


def test_absorb_merges_chronologically(log):
    log.info("local")  # stamped now, after the synthetic worker stamps
    shipped = (
        EventRecord(1.0, "WARN", "w1", None, ()),
        EventRecord(2.0, "INFO", "w2", None, (("k", "v"),)),
    )
    log.absorb(shipped)
    assert [r.name for r in log.records()] == ["w1", "w2", "local"]
    assert len(log) == 3


def test_write_events_jsonl(log):
    log.info("first", x=1)
    log.error("second")
    out = io.StringIO()
    obs_events.write_events_jsonl(log, out)
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    assert [l["name"] for l in lines] == ["first", "second"]
    assert lines[0]["x"] == 1
    assert lines[1]["level"] == "ERROR"

    filtered = io.StringIO()
    obs_events.write_events_jsonl(log, filtered, min_level="ERROR")
    assert len(filtered.getvalue().splitlines()) == 1


def test_disabled_log_is_inert():
    obs_events.disable()
    log = obs_events.get()
    log.info("dropped", a=1)
    log.error("dropped too")
    log.absorb([EventRecord(1.0, "INFO", "x", None, ())])
    assert log.records() == []
    assert len(log) == 0


def test_fault_injection_becomes_queryable_events(log):
    """A faulted run leaves WARN records naming site and ordinal."""
    plan = FaultPlan.parse("seed=3;jit.build=1.0:1")
    with faults.session(plan) as injector:
        assert injector.draw("jit.build") is not None
    warns = log.records("WARN")
    assert any(r.name == "fault.injected" for r in warns)
    fields = dict(next(r for r in warns if r.name == "fault.injected").fields)
    assert fields["site"] == "jit.build"


# -- bounded ring buffer -----------------------------------------------------


def test_ring_buffer_caps_memory_and_counts_drops():
    with obs_events.session(capacity=4) as log:
        for i in range(10):
            log.info("evt", i=i)
        assert log.capacity == 4
        assert len(log) == 4
        assert log.dropped == 6
        # Newest survive; oldest were evicted.
        assert [dict(r.fields)["i"] for r in log.records()] == [6, 7, 8, 9]


def test_ring_capacity_env_override(monkeypatch):
    monkeypatch.setenv(obs_events.CAPACITY_ENV, "3")
    with obs_events.session() as log:
        assert log.capacity == 3
        for i in range(5):
            log.info("evt", i=i)
        assert len(log) == 3
        assert log.dropped == 2
    monkeypatch.setenv(obs_events.CAPACITY_ENV, "not-a-number")
    with pytest.raises(ValueError, match=obs_events.CAPACITY_ENV):
        obs_events.enable()


def test_drops_mirror_into_telemetry_counter():
    with telemetry.session() as tm, obs_events.session(capacity=2) as log:
        for _ in range(5):
            log.info("evt")
        assert log.dropped == 3
        assert tm.counter_value("events.dropped") == 3.0


def test_absorbed_events_sort_chronologically_with_stable_ties(log):
    log.info("local")  # time.time() stamp, far after the synthetic ones
    log.absorb(
        [
            EventRecord(2.0, "INFO", "late", None, ()),
            EventRecord(1.0, "WARN", "tie-first", None, ()),
            EventRecord(1.0, "INFO", "tie-second", None, ()),
        ]
    )
    names = [r.name for r in log.records()]
    # Timestamp order across processes; equal stamps keep absorb order.
    assert names == ["tie-first", "tie-second", "late", "local"]
    # A later absorb re-merges rather than appending.
    log.absorb([EventRecord(1.5, "INFO", "between", None, ())])
    names = [r.name for r in log.records()]
    assert names == ["tie-first", "tie-second", "between", "late", "local"]


def test_warn_incidents_survive_debug_floods():
    """Chatty DEBUG loops cannot flush incidents out of the ring."""
    with telemetry.session() as tm, obs_events.session(capacity=8) as log:
        log.warn("fault.injected", site="jit.build")
        for i in range(100):
            log.debug("chatter", i=i)
        warns = log.records("WARN")
        assert [r.name for r in warns] == ["fault.injected"]
        # Only DEBUG records were truly lost: the WARN parked in the
        # reserve when evicted, and the main ring kept the last 8.
        assert log.dropped == 100 - 8
        assert tm.counter_value("events.dropped") == log.dropped
        # Accounting is conservation-exact: every emission is either
        # retained or counted dropped.
        assert len(log) + log.dropped == 101


def test_incident_reserve_is_itself_bounded():
    with obs_events.session(capacity=2) as log:
        for i in range(10):
            log.warn("incident", i=i)
        # capacity 2 main + reserve capped at min(INCIDENT_RESERVE, 2).
        assert len(log) == 4
        assert log.dropped == 6
        kept = [dict(r.fields)["i"] for r in log.records()]
        assert kept == [6, 7, 8, 9]
