"""GT-Pin sessions and the one-call profile() workflow."""

import pytest

from repro.gtpin.profiler import (
    GTPinSession,
    build_runtime,
    default_tools,
    profile,
)
from repro.gtpin.instrumentation import Capability
from repro.gtpin.tools import (
    InstructionCountTool,
    MemoryBytesTool,
    StructureTool,
)


def test_session_requires_tools():
    with pytest.raises(ValueError, match="at least one tool"):
        GTPinSession([])


def test_session_rejects_duplicate_tool_names():
    with pytest.raises(ValueError, match="duplicate tool names"):
        GTPinSession([InstructionCountTool(), InstructionCountTool()])


def test_session_unions_capabilities():
    session = GTPinSession([StructureTool(), InstructionCountTool()])
    assert session.rewriter.capabilities == frozenset(
        {Capability.BLOCK_COUNTS}
    )


def test_profile_end_to_end(tiny_app):
    profiled = profile(tiny_app)
    assert profiled.application_name == "tiny-app"
    assert profiled.report.record_count == 6
    assert profiled.report.rewritten_kernels == 2
    assert profiled.report["instructions"].dynamic_instructions > 0


def test_report_getitem_error(tiny_app):
    profiled = profile(tiny_app, tools=[InstructionCountTool()])
    with pytest.raises(KeyError, match="attached tools"):
        profiled.report["nonexistent"]
    assert "instructions" in profiled.report
    assert list(profiled.report) == ["instructions"]


def test_default_tools_cover_characterization():
    names = {tool.name for tool in default_tools()}
    assert names == {
        "structure",
        "instructions",
        "block_counts",
        "opcode_mix",
        "simd_widths",
        "memory_bytes",
    }


def test_attach_detach(tiny_app):
    session = GTPinSession([InstructionCountTool()])
    runtime = build_runtime(tiny_app)
    session.attach(runtime)
    assert runtime.driver.rewriter_installed
    session.detach(runtime)
    assert not runtime.driver.rewriter_installed


def test_profile_is_seed_deterministic(tiny_app):
    a = profile(tiny_app, trial_seed=11)
    b = profile(tiny_app, trial_seed=11)
    assert (
        a.report["instructions"].dynamic_instructions
        == b.report["instructions"].dynamic_instructions
    )


def test_profiled_run_marks_instrumented(tiny_app):
    profiled = profile(tiny_app)
    assert all(d.instrumented for d in profiled.run.dispatches)
