"""Assembly text parser: round trips with the disassembler."""

import pytest

from repro.isa.asm_parser import AsmParseError, parse_instruction, parse_kernel
from repro.isa.instruction import (
    AccessPattern,
    AddressSpace,
    Instruction,
    MemoryDirection,
    SendMessage,
)
from repro.isa.opcodes import Opcode

from conftest import build_tiny_kernel


def test_parse_simple_alu():
    instr = parse_instruction("add(16) r20, r21, r22")
    assert instr.opcode is Opcode.ADD
    assert instr.exec_size == 16
    assert instr.dst == 20
    assert instr.srcs == (21, 22)


def test_parse_extended_math():
    instr = parse_instruction("math.sqrt(8) r5, r6")
    assert instr.opcode is Opcode.MATH_SQRT
    assert instr.exec_size == 8


def test_parse_predicated():
    instr = parse_instruction("(+f0) mov(1) r3, r4")
    assert instr.predicated
    assert instr.opcode is Opcode.MOV


def test_parse_send():
    instr = parse_instruction(
        "send(16) r10, r11, read:global[8B/ch, strided]"
    )
    assert instr.is_send
    assert instr.send is not None
    assert instr.send.direction is MemoryDirection.READ
    assert instr.send.address_space is AddressSpace.GLOBAL
    assert instr.send.bytes_per_channel == 8
    assert instr.send.pattern is AccessPattern.STRIDED


def test_parse_gtpin_marker():
    instr = parse_instruction("add(1) r120, r120  // [gtpin]")
    assert instr.is_instrumentation


def test_comment_ignored():
    instr = parse_instruction("mov(8) r1, r2  // something helpful")
    assert instr.opcode is Opcode.MOV
    assert not instr.is_instrumentation


def test_parse_errors_carry_context():
    with pytest.raises(AsmParseError, match="line 7"):
        parse_instruction("not an instruction", line_no=7)
    with pytest.raises(AsmParseError, match="bad operand"):
        parse_instruction("add(8) rX, r2")
    with pytest.raises(AsmParseError, match="unknown GEN mnemonic"):
        parse_instruction("frobnicate(8) r1, r2")


def test_instruction_round_trip_cases():
    cases = [
        Instruction(Opcode.MOV, exec_size=1, dst=4, srcs=(5,)),
        Instruction(Opcode.MAD, exec_size=16, dst=9, srcs=(10, 11)),
        Instruction(Opcode.JMPI, exec_size=1),
        Instruction(
            Opcode.SEND,
            exec_size=8,
            dst=20,
            srcs=(21,),
            send=SendMessage(
                MemoryDirection.WRITE,
                bytes_per_channel=16,
                address_space=AddressSpace.IMAGE,
                pattern=AccessPattern.SEQUENTIAL,
            ),
        ),
        Instruction(Opcode.ADD, exec_size=1, is_instrumentation=True),
    ]
    for original in cases:
        parsed = parse_instruction(original.disassemble())
        assert parsed.opcode is original.opcode
        assert parsed.exec_size == original.exec_size
        assert parsed.dst == original.dst
        assert parsed.srcs == original.srcs
        assert parsed.is_instrumentation == original.is_instrumentation
        if original.send:
            assert parsed.send is not None
            assert parsed.send.direction is original.send.direction
            assert parsed.send.bytes_per_channel == original.send.bytes_per_channel
            assert parsed.send.address_space is original.send.address_space
            assert parsed.send.pattern is original.send.pattern


def test_kernel_round_trip(tiny_kernel):
    parsed = parse_kernel(tiny_kernel.disassemble())
    assert parsed.name == tiny_kernel.name
    assert parsed.simd_width == tiny_kernel.simd_width
    assert parsed.arg_names == tiny_kernel.arg_names
    assert parsed.n_blocks == tiny_kernel.n_blocks
    assert (
        parsed.static_instruction_count
        == tiny_kernel.static_instruction_count
    )
    for original_block, parsed_block in zip(tiny_kernel, parsed):
        assert parsed_block.label == original_block.label
        assert parsed_block.successors == original_block.successors
        for a, b in zip(original_block, parsed_block):
            assert a.opcode is b.opcode
            assert a.exec_size == b.exec_size
    assert parsed.metadata["parsed_from_assembly"] is True


def test_kernel_round_trip_with_program(tiny_kernel):
    """Supplying the original tree recovers executable semantics."""
    import numpy as np

    from repro.isa.program import execution_counts

    parsed = parse_kernel(
        tiny_kernel.disassemble(), program=tiny_kernel.program
    )
    args = {"iters": 5.0, "n": 64.0}
    original_counts = execution_counts(
        tiny_kernel.program, args, np.random.default_rng(0),
        tiny_kernel.n_blocks,
    )
    parsed_counts = execution_counts(
        parsed.program, args, np.random.default_rng(0), parsed.n_blocks
    )
    assert original_counts.tolist() == parsed_counts.tolist()


def test_generated_kernels_parse(small_app):
    for source in small_app.sources.values():
        parsed = parse_kernel(source.body.disassemble())
        assert parsed.n_blocks == source.body.n_blocks
        assert (
            parsed.static_instruction_count
            == source.body.static_instruction_count
        )


def test_instrumented_kernels_parse(tiny_kernel):
    from repro.gtpin.instrumentation import Capability
    from repro.gtpin.rewriter import GTPinRewriter
    from repro.gtpin.trace_buffer import TraceBuffer

    rewriter = GTPinRewriter(
        frozenset({Capability.BLOCK_COUNTS}), TraceBuffer()
    )
    instrumented = rewriter.rewrite(tiny_kernel)
    parsed = parse_kernel(instrumented.disassemble())
    parsed_probes = sum(
        1 for b in parsed for i in b if i.is_instrumentation
    )
    original_probes = sum(
        1 for b in instrumented for i in b if i.is_instrumentation
    )
    assert parsed_probes == original_probes > 0


def test_parse_kernel_errors():
    with pytest.raises(AsmParseError, match="header"):
        parse_kernel("add(8) r1, r2")
    with pytest.raises(AsmParseError, match="outside any block"):
        parse_kernel(
            "// kernel k  simd16  args=[]  x\nadd(8) r1, r2"
        )
    with pytest.raises(AsmParseError, match="empty"):
        parse_kernel("")
